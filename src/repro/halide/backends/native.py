"""The native backend: whole-nest C compilation with GIL-free segments.

Where the compiled engine dispatches one fused-NumPy kernel per ``Store``
from Python, this backend hands :mod:`.cgen` the *entire* lowered loop nest
and executes the resulting shared object through cffi in ABI mode.  Each
parallel-free subtree becomes one C function ("segment"); parallel ``For``
loops stay in Python so the shared worker pool keeps making the placement
decision (:func:`repro.halide.parallel.choose_tile_executor`), but every
segment call releases the GIL for its whole duration, so the fan-out finally
scales with cores.

Compilation is cached at three levels:

* an in-process table keyed on the *source digest* (sha256 of the C source
  plus the toolchain fingerprint) holding open ``(ffi, lib)`` handles;
* the :class:`~repro.store.ArtifactStore` under a new ``native/`` stage,
  keyed on the same digest, holding the ``.so`` bytes — a warm start costs
  zero compiler invocations;
* a per-``LoweredPipeline`` program table (weakref-evicted) so repeated
  frames skip even the source generation.

Degradation, not failure: no C compiler on PATH, cffi missing, a construct
:mod:`.cgen` cannot translate, or a (possibly injected — fault site
``native.compile``) compiler failure all fall back to the compiled-NumPy
backend, bit-identical by construction.  ``native_stats()`` counts every
path so tests can prove which one ran.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import weakref
from typing import Mapping, Optional

import numpy as np

try:  # pragma: no cover - exercised via the degraded path when absent
    import cffi
except ImportError:  # pragma: no cover
    cffi = None

from ...ir import For, Store
from ...ir.types import dtype_from_name
from ...reliability.faults import InjectedFault, fault_point
from ...store import ArtifactKey, default_store
from ..func import vectorize_width
from ..parallel import choose_tile_executor, record_execution, submit_task
from ..realize import RealizationError
from .base import Backend, _ExecState, _scalar
from .cgen import CGenError, NestProgram, SegmentSpec, generate_nest

__all__ = ["NativeBackend", "NativeCompileError", "native_stats",
           "reset_native_caches", "toolchain_path"]

#: ArtifactStore stage for cached shared objects.
NATIVE_STAGE = "native"

_DIV_ZERO_MESSAGE = "integer division by zero (x86 idiv raises #DE)"

_RC_MESSAGES = {
    1: _DIV_ZERO_MESSAGE,
    2: "reduction scatter index out of bounds",
    3: "native scratch allocation failed",
}


class NativeCompileError(RealizationError):
    """The C toolchain rejected a generated nest (degradable)."""


_STATS_LOCK = threading.Lock()
_STATS = {
    "compiles": 0,          # actual compiler invocations
    "so_cache_hits": 0,     # in-process (ffi, lib) reuse
    "store_hits": 0,        # .so bytes served from the ArtifactStore
    "compile_failures": 0,  # real or injected toolchain failures
    "degraded": 0,          # frames served by the compiled backend instead
    "native_frames": 0,     # frames fully executed natively
    "segment_calls": 0,     # C segment invocations
    "no_toolchain": 0,      # degrade because no C compiler was found
}


def native_stats() -> dict:
    """A snapshot of the native backend's counters."""
    with _STATS_LOCK:
        return dict(_STATS)


def _bump(key: str, amount: int = 1) -> None:
    with _STATS_LOCK:
        _STATS[key] += amount


# -- toolchain ---------------------------------------------------------------

def toolchain_path() -> Optional[str]:
    """The C compiler to use, or ``None`` (degrade) when there is none.

    ``REPRO_NATIVE_CC`` (then ``CC``) overrides discovery; setting either to
    a path that does not resolve *disables* the backend — which is how CI
    proves the compilerless fallback without uninstalling gcc.
    """
    for env_var in ("REPRO_NATIVE_CC", "CC"):
        value = os.environ.get(env_var)
        if value is not None:
            return shutil.which(value) if value else None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


_FINGERPRINTS: dict = {}


def _toolchain_fingerprint(cc: str) -> str:
    cached = _FINGERPRINTS.get(cc)
    if cached is not None:
        return cached
    try:
        out = subprocess.run([cc, "--version"], capture_output=True,
                             text=True, timeout=30).stdout
        fingerprint = out.splitlines()[0].strip() if out else cc
    except Exception:
        fingerprint = cc
    _FINGERPRINTS[cc] = fingerprint
    return fingerprint


# -- caches ------------------------------------------------------------------

_COMPILE_LOCK = threading.Lock()
#: source digest -> (ffi, lib) open handles
_SO_CACHE: dict = {}
#: source digests whose real compilation failed (never retried this process)
_FAILED: set = set()
#: program-table sentinel: this lowering permanently degrades
_DEGRADED = object()
#: (id(lowered), frame dtype, widths, param kinds, cc) -> bundle | _DEGRADED
_PROGRAMS: dict = {}
_KEYS_BY_ID: dict = {}
_SO_DIR: list = []  # lazily-created scratch dir for store-served .so files


def reset_native_caches() -> None:
    """Drop all in-process caches (tests only; on-disk store is untouched).

    Also rotates the scratch directory so previously materialized ``.so``
    files stop short-circuiting the store lookup — warm-start tests need the
    next realize to go back to the artifact store.
    """
    with _COMPILE_LOCK:
        _SO_CACHE.clear()
        _FAILED.clear()
        _PROGRAMS.clear()
        _KEYS_BY_ID.clear()
        if _SO_DIR:
            shutil.rmtree(_SO_DIR[0], ignore_errors=True)
            _SO_DIR.clear()


def _evict_programs(lowered_id: int) -> None:
    for key in _KEYS_BY_ID.pop(lowered_id, ()):  # pragma: no cover - GC timing
        _PROGRAMS.pop(key, None)


def _so_scratch_dir() -> str:
    if not _SO_DIR:
        _SO_DIR.append(tempfile.mkdtemp(prefix="repro-native-"))
    return _SO_DIR[0]


def _store_key(digest: str) -> ArtifactKey:
    payload = ('{"stage":"%s","digest":"%s"}' % (NATIVE_STAGE, digest))
    return ArtifactKey(stage=NATIVE_STAGE, digest=digest, payload=payload)


class _Bundle:
    """One compiled nest ready to execute."""

    __slots__ = ("program", "ffi", "lib", "digest")

    def __init__(self, program: NestProgram, ffi, lib, digest: str) -> None:
        self.program = program
        self.ffi = ffi
        self.lib = lib
        self.digest = digest


class _NativeState(_ExecState):
    __slots__ = ("bundle",)

    def __init__(self, params, stats, frame_shape, bundle) -> None:
        super().__init__(params, stats, frame_shape)
        self.bundle = bundle


class NativeBackend(Backend):
    """Execute lowered nests as native code; degrade to compiled otherwise."""

    name = "native"

    # -- legacy primitives: delegate to the compiled engine ------------------
    # (The un-lowered paths are whole-region NumPy evaluations; there is no
    # loop nest to compile, so the compiled backend is the honest answer.)

    def _compiled(self):
        from . import get_backend
        return get_backend("compiled")

    def realize_func(self, func, shape, buffers, params):
        return self._compiled().realize_func(func, shape, buffers, params)

    def evaluate_region(self, func, origin, extent, buffers, params):
        return self._compiled().evaluate_region(func, origin, extent,
                                                buffers, params)

    def reduce_region(self, func, out, origin, extent, buffers, params):
        return self._compiled().reduce_region(func, out, origin, extent,
                                              buffers, params)

    def region_evaluator(self, func):
        return self._compiled().region_evaluator(func)

    def region_reducer(self, func):
        return self._compiled().region_reducer(func)

    # -- compilation ---------------------------------------------------------

    def _program_key(self, lowered, frame: np.ndarray,
                     params: Mapping) -> tuple:
        widths = tuple(
            vectorize_width(node.func.schedule)
            for node in lowered.stmt.walk() if isinstance(node, Store))
        kinds = tuple(sorted(
            (name, "float" if isinstance(value, float) else "int")
            for name, value in (params or {}).items()))
        return (id(lowered), frame.dtype.name, widths, kinds,
                toolchain_path() or "")

    def _program_for(self, lowered, frame: np.ndarray,
                     params: Mapping) -> Optional[_Bundle]:
        """The compiled bundle for this lowering, or ``None`` to degrade.

        Permanent degrades (``CGenError``, missing toolchain/cffi, real
        compile failures) are memoized; an :class:`InjectedFault` propagates
        so each frame under chaos degrades independently.
        """
        key = self._program_key(lowered, frame, params)
        with _COMPILE_LOCK:
            cached = _PROGRAMS.get(key)
        if cached is _DEGRADED:
            return None
        if cached is not None:
            return cached
        bundle: object = None
        try:
            bundle = self._build(lowered, frame, params)
        except InjectedFault:
            raise
        except (CGenError, NativeCompileError, RealizationError, OSError):
            bundle = None
        if bundle is None:
            with _COMPILE_LOCK:
                _PROGRAMS[key] = _DEGRADED
            return None
        with _COMPILE_LOCK:
            _PROGRAMS[key] = bundle
            if id(lowered) not in _KEYS_BY_ID:
                _KEYS_BY_ID[id(lowered)] = set()
                weakref.finalize(lowered, _evict_programs, id(lowered))
            _KEYS_BY_ID[id(lowered)].add(key)
        return bundle

    def _build(self, lowered, frame: np.ndarray,
               params: Mapping) -> Optional[_Bundle]:
        if cffi is None:
            return None
        cc = toolchain_path()
        if cc is None:
            _bump("no_toolchain")
            return None
        frame_dtype = dtype_from_name(frame.dtype.name)
        param_kinds = {
            name: ("float" if isinstance(value, float) else "int")
            for name, value in (params or {}).items()}
        program = generate_nest(lowered, frame_dtype, param_kinds)
        fingerprint = _toolchain_fingerprint(cc)
        digest = hashlib.sha256(
            (program.source + "\0" + fingerprint).encode()).hexdigest()
        with _COMPILE_LOCK:
            if digest in _FAILED:
                return None
            handles = _SO_CACHE.get(digest)
            if handles is not None:
                _bump("so_cache_hits")
                return _Bundle(program, handles[0], handles[1], digest)
            so_path = self._materialize_so(cc, program, digest)
            if so_path is None:
                return None
            ffi = cffi.FFI()
            ffi.cdef(program.cdef)
            lib = ffi.dlopen(so_path)
            _SO_CACHE[digest] = (ffi, lib)
        return _Bundle(program, ffi, lib, digest)

    def _materialize_so(self, cc: str, program: NestProgram,
                        digest: str) -> Optional[str]:
        """Path to the shared object for ``digest``, compiling if needed."""
        so_path = os.path.join(_so_scratch_dir(), f"{digest}.so")
        if os.path.exists(so_path):
            return so_path
        store = None
        try:
            store = default_store()
            blob = store.get(_store_key(digest))
        except Exception:
            blob = None
        if isinstance(blob, bytes):
            with open(so_path, "wb") as handle:
                handle.write(blob)
            _bump("store_hits")
            return so_path
        try:
            fault_point("native.compile")
        except InjectedFault:
            _bump("compile_failures")
            raise
        src_path = os.path.join(_so_scratch_dir(), f"{digest}.c")
        with open(src_path, "w") as handle:
            handle.write(program.source)
        # -fwrapv: signed wrap is defined (belt-and-braces; cgen already
        # emits unsigned arithmetic).  -ffp-contract=off: no FMA fusion, so
        # float results match NumPy's one-op-at-a-time evaluation.
        result = subprocess.run(
            [cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fwrapv",
             "-o", so_path, src_path, "-lm"],
            capture_output=True, text=True)
        if result.returncode != 0:
            _bump("compile_failures")
            _FAILED.add(digest)
            raise NativeCompileError(
                f"{cc} failed (rc {result.returncode}): "
                f"{result.stderr.strip()[:500]}")
        _bump("compiles")
        if store is not None:
            try:
                with open(so_path, "rb") as handle:
                    store.put(_store_key(digest), handle.read())
            except Exception:
                pass
        return so_path

    # -- execution -----------------------------------------------------------

    def execute(self, lowered, image: np.ndarray,
                params: Mapping[str, float] | None = None,
                stats: Optional[dict] = None) -> np.ndarray:
        frame = np.ascontiguousarray(np.asarray(image))
        if frame.shape != lowered.frame_shape:
            raise RealizationError(
                f"lowered pipeline expects frame {lowered.frame_shape}, "
                f"got {frame.shape}")
        try:
            bundle = self._program_for(lowered, frame, params or {})
        except InjectedFault:
            bundle = None
        if bundle is None:
            _bump("degraded")
            return self._compiled().execute(lowered, frame, params, stats)
        buffers: dict = {lowered.input_name: frame}
        output = np.empty(lowered.frame_shape,
                          dtype=lowered.out_dtype.to_numpy())
        buffers[lowered.output] = output
        state = _NativeState(params=dict(params or {}),
                             stats=stats if stats is not None else {},
                             frame_shape=lowered.frame_shape,
                             bundle=bundle)
        self._exec(lowered.stmt, {}, buffers, state)
        _bump("native_frames")
        return output

    def _exec(self, stmt, env, buffers, state) -> None:
        bundle = getattr(state, "bundle", None)
        if bundle is None:
            super()._exec(stmt, env, buffers, state)
            return
        program = bundle.program
        if isinstance(stmt, For) and stmt.kind == "parallel" \
                and id(stmt) in program.segment_for:
            self._exec_parallel_for(stmt, env, buffers, state)
            return
        spec = program.segment_for.get(id(stmt))
        if spec is not None:
            self._call_segment(spec, env, buffers, state)
            return
        super()._exec(stmt, env, buffers, state)

    def _exec_parallel_for(self, stmt, env, buffers, state) -> None:
        bundle = state.bundle
        start = _scalar(stmt.min, env, state.params)
        count = _scalar(stmt.extent, env, state.params)
        if count <= 0:
            return
        body_spec = bundle.program.parallel_body.get(id(stmt))
        if body_spec is not None and \
                choose_tile_executor(state.frame_shape, count):
            futures = [
                submit_task(self._call_segment, body_spec,
                            {**env, stmt.name: start + index},
                            buffers, state)
                for index in range(count)]
            for future in futures:
                future.result()
            record_execution(True, count)
            state.tally("parallel_loops")
            return
        record_execution(False, count)
        state.tally("serial_loops")
        serial_spec = bundle.program.segment_for.get(id(stmt))
        if serial_spec is not None:
            self._call_segment(serial_spec, env, buffers, state)
            return
        iter_env = dict(env)
        for index in range(count):
            iter_env[stmt.name] = start + index
            self._exec(stmt.body, iter_env, buffers, state)

    def _call_segment(self, spec: SegmentSpec, env: Mapping,
                      buffers: Mapping, state) -> None:
        bundle = state.bundle
        ffi = bundle.ffi
        keepalive = []
        buf_ptrs = []
        shapes: list = []
        for name, rank in zip(spec.buffers, spec.ranks):
            array = buffers.get(name)
            if array is None:
                raise RealizationError(
                    f"native segment references unbound buffer {name!r}")
            if array.ndim != rank:
                raise RealizationError(
                    f"buffer {name!r} is rank {array.ndim}, segment "
                    f"expects {rank}")
            view = ffi.from_buffer(array)
            keepalive.append(view)
            buf_ptrs.append(ffi.cast("void *", view))
            shapes.extend(array.shape)
        env_vals = []
        for name in spec.env_vars:
            value = env.get(name)
            if value is None:
                value = state.params.get(name)
            if value is None:
                raise RealizationError(f"unbound loop variable {name}")
            env_vals.append(int(value))
        iparams = [int(state.params.get(name, spec.param_defaults.get(name, 0)))
                   for name in spec.int_params]
        fparams = [float(state.params.get(name, spec.param_defaults.get(name, 0.0)))
                   for name in spec.float_params]
        bufs_arg = ffi.new("void *[]", buf_ptrs) if buf_ptrs else ffi.NULL
        shapes_arg = ffi.new("int64_t[]", shapes) if shapes else ffi.NULL
        env_arg = ffi.new("int64_t[]", env_vals) if env_vals else ffi.NULL
        ip_arg = ffi.new("int64_t[]", iparams) if iparams else ffi.NULL
        fp_arg = ffi.new("double[]", fparams) if fparams else ffi.NULL
        # The cffi ABI-mode call releases the GIL for the whole segment.
        rc = getattr(bundle.lib, spec.name)(
            bufs_arg, shapes_arg, env_arg, ip_arg, fp_arg)
        _bump("segment_calls")
        del keepalive
        if rc != 0:
            raise RealizationError(
                _RC_MESSAGES.get(rc, f"native segment failed (rc {rc})"))
