"""The compiled backend: cached fused-NumPy kernels behind the interface.

Whole-Func realization goes through :func:`repro.halide.compile.compile_func`
(codegen paid once per structural signature, honouring tiled/parallel
schedules); region evaluation calls the cached kernel's ``_body`` — the same
code the kernel's own tile loop runs — so a lowered ``Store`` executes the
fused, CSE'd, narrow-dtype kernel at any origin.  Stores whose expressions
cannot be lowered fall back to the interpreter's region evaluator, keeping
``compiled`` always safe.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..compile import compile_func
from .base import Backend


class CompiledBackend(Backend):
    name = "compiled"

    def realize_func(self, func, shape, buffers, params) -> np.ndarray:
        return compile_func(func)(shape, buffers, params)

    def evaluate_region(self, func, origin, extent, buffers,
                        params: Mapping) -> np.ndarray:
        return compile_func(func).evaluate_region(origin, extent, buffers,
                                                  params)

    def reduce_region(self, func, out, origin, extent, buffers,
                      params: Mapping) -> np.ndarray:
        return compile_func(func).reduce_region(out, origin, extent, buffers,
                                                params)

    def region_evaluator(self, func):
        # Resolve the kernel-cache entry once per Store instead of per tile.
        return compile_func(func).evaluate_region

    def region_reducer(self, func):
        return compile_func(func).reduce_region
