"""C code generation for the native backend.

This module turns a :class:`~repro.halide.lower.LoweredPipeline`'s ``Stmt``
tree into one self-contained C translation unit.  The unit is split into
*segments* — maximal parallel-free subtrees compiled to one exported function
each — so the Python-side executor (:mod:`.native`) can keep fanning parallel
``For`` loops out across the shared worker pool while everything underneath
runs as native code with the GIL released (cffi ABI-mode calls drop the GIL
for the duration of the C call).

The contract is *bit-identity with the interpreter oracle*: every arithmetic
rule here mirrors ``realize._evaluate`` / ``_apply_binop`` exactly —

* integer arithmetic is int64 with two's-complement wraparound (emitted via
  unsigned arithmetic so it is defined behaviour in C);
* python float constants are always double, float32 only arises from explicit
  ``Cast`` nodes, and any mixed-kind operation promotes to double (NumPy's
  promotion lattice restricted to the three kinds the interpreter produces);
* comparisons compare in the promoted kind and yield int64 0/1;
* ``%`` is always the truncated integer remainder regardless of node dtype,
  ``/`` is a true divide only when the node dtype is floating;
* integer division by zero is not UB but return code 1, which the caller
  re-raises as the interpreter's exact ``RealizationError``;
* min/max on floats propagate NaN like ``np.minimum``/``np.maximum``;
* narrowing casts wrap modulo 2**bits with a signed fix, like ``_wrap_cast``.

Segment ABI::

    int64_t rp_seg{n}(void **bufs, const int64_t *shapes, const int64_t *env,
                      const int64_t *iparams, const double *fparams);

``bufs`` holds one data pointer per :attr:`SegmentSpec.buffers` entry,
``shapes`` their concatenated extents, ``env`` the Python-level loop/let
bindings the segment references, and ``iparams``/``fparams`` the pipeline
parameters.  Return codes: 0 ok, 1 integer division by zero, 2 reduction
scatter index out of bounds, 3 scratch allocation failure.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ...ir import (
    AccumMerge,
    Allocate,
    BinOp,
    Block,
    BufferAccess,
    Call,
    Cast,
    Const,
    Expr,
    For,
    IfThenElse,
    Let,
    Op,
    PadEdge,
    Param,
    ProducerConsumer,
    ReduceLoop,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
)
from ...ir.types import DType
from ..func import _strip_self_reference, vectorize_width

__all__ = ["CGenError", "SegmentSpec", "NestProgram", "generate_nest"]


class CGenError(Exception):
    """The lowered nest contains a construct the C emitter cannot translate.

    Raised at generation time; the native backend treats it as a permanent
    degrade-to-compiled signal for this lowering.
    """


#: Computation kinds the interpreter's value domain collapses to.
_CTYPE = {"i64": "int64_t", "f32": "float", "f64": "double"}


def _promote(a: str, b: str) -> str:
    """NumPy's promotion lattice restricted to {i64, f32, f64}."""
    if a == b:
        return a
    return "f64"


def _storage_ctype(dtype: DType) -> str:
    if dtype.is_float:
        return "float" if dtype.bits == 32 else "double"
    if dtype.is_signed:
        return f"int{dtype.bits}_t"
    return f"uint{dtype.bits}_t"


def _int_literal(value: int) -> str:
    value = int(value)
    if value == -(2**63):
        return "(-INT64_C(9223372036854775807) - 1)"
    return f"INT64_C({value})"


def _float_literal(value: float) -> str:
    value = float(value)
    if value != value:
        return "NAN"
    if value == float("inf"):
        return "INFINITY"
    if value == float("-inf"):
        return "-INFINITY"
    if value == int(value) and abs(value) < 1e15:
        return f"{value:.1f}"
    # Hex float literals round-trip exactly (C99 §6.4.4.2).
    return value.hex()


_SANITIZE = re.compile(r"[^0-9A-Za-z_]")


@dataclass(frozen=True)
class SegmentSpec:
    """Call interface of one emitted segment function."""

    name: str
    buffers: Tuple[str, ...]
    ranks: Tuple[int, ...]
    env_vars: Tuple[str, ...]
    int_params: Tuple[str, ...]
    float_params: Tuple[str, ...]
    param_defaults: Dict[str, object] = field(default_factory=dict)


@dataclass
class NestProgram:
    """A whole lowered nest compiled to C source plus its call plan.

    ``segment_for`` maps ``id(stmt)`` of a parallel-free subtree to the
    segment that executes it entirely; ``parallel_body`` maps ``id(for_stmt)``
    of a parallel ``For`` to the segment executing *one iteration* of its
    body (the loop variable arrives through ``env``).
    """

    source: str
    cdef: str
    segments: List[SegmentSpec]
    segment_for: Dict[int, SegmentSpec]
    parallel_body: Dict[int, SegmentSpec]


@dataclass
class _BufView:
    """How a buffer is addressed inside one segment."""

    ptr: str
    ctype: str
    dtype: DType
    dims: List[str]
    strides: List[str]
    base: str = "0"

    @property
    def rank(self) -> int:
        return len(self.dims)


def _contains_parallel(stmt: Stmt) -> bool:
    return any(isinstance(node, For) and node.kind == "parallel" for node in stmt.walk())


class _SegmentEmitter:
    """Emits one segment function; owns its naming and slot bookkeeping."""

    def __init__(self, name: str, registry: Mapping[str, Tuple[DType, int]],
                 param_kinds: Mapping[str, str]):
        self.name = name
        self.registry = registry
        self.param_kinds = param_kinds
        self.lines: List[str] = []
        self.depth = 1
        self._counter = 0
        self._used_names: set = set()
        # name -> C identifier for loop/let variables bound inside the segment
        self.vars: Dict[str, str] = {}
        # buffer name -> view; insertion order defines the bufs[] slot order
        self.bufs: Dict[str, _BufView] = {}
        self.buf_order: List[str] = []
        # env / param slots, first-use ordered
        self.env_slots: Dict[str, str] = {}
        self.env_order: List[str] = []
        self.iparam_slots: Dict[str, str] = {}
        self.iparam_order: List[str] = []
        self.fparam_slots: Dict[str, str] = {}
        self.fparam_order: List[str] = []
        self.param_defaults: Dict[str, object] = {}
        # Store-local parameters (tile bases); scoped per Store
        self.local_params: Dict[str, str] = {}
        # restricted Var scope inside Store/ReduceLoop value expressions
        self.value_scope: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------ util

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    def _fresh(self, hint: str) -> str:
        base = _SANITIZE.sub("_", hint) or "v"
        name = base
        while name in self._used_names:
            self._counter += 1
            name = f"{base}_{self._counter}"
        self._used_names.add(name)
        return name

    def _temp(self, ctype: str, expr: str) -> str:
        self._counter += 1
        name = f"t{self._counter}"
        self.emit(f"{ctype} {name} = {expr};")
        return name

    # ---------------------------------------------------------------- slots

    def _view(self, buffer: str) -> _BufView:
        view = self.bufs.get(buffer)
        if view is not None:
            return view
        entry = self.registry.get(buffer)
        if entry is None:
            raise CGenError(f"segment references unknown buffer {buffer!r}")
        dtype, rank = entry
        slot = len(self.buf_order)
        ctype = _storage_ctype(dtype)
        view = _BufView(
            ptr=f"b{slot}",
            ctype=ctype,
            dtype=dtype,
            dims=[f"b{slot}_d{a}" for a in range(rank)],
            strides=[f"b{slot}_s{a}" for a in range(rank)],
        )
        self.bufs[buffer] = view
        self.buf_order.append(buffer)
        return view

    def _env_var(self, name: str) -> str:
        ident = self.env_slots.get(name)
        if ident is None:
            ident = f"ev{len(self.env_order)}_{_SANITIZE.sub('_', name)}"
            self.env_slots[name] = ident
            self.env_order.append(name)
        return ident

    def _param(self, expr: Param) -> Tuple[str, str]:
        local = self.local_params.get(expr.name)
        if local is not None:
            return local, "i64"
        kind = self.param_kinds.get(expr.name)
        if kind is None:
            kind = "float" if isinstance(expr.value, float) else "int"
        if kind == "float":
            ident = self.fparam_slots.get(expr.name)
            if ident is None:
                ident = f"fp{len(self.fparam_order)}_{_SANITIZE.sub('_', expr.name)}"
                self.fparam_slots[expr.name] = ident
                self.fparam_order.append(expr.name)
            self.param_defaults.setdefault(expr.name, expr.value)
            return ident, "f64"
        ident = self.iparam_slots.get(expr.name)
        if ident is None:
            ident = f"ip{len(self.iparam_order)}_{_SANITIZE.sub('_', expr.name)}"
            self.iparam_slots[expr.name] = ident
            self.iparam_order.append(expr.name)
        self.param_defaults.setdefault(expr.name, expr.value)
        return ident, "i64"

    # ------------------------------------------------------------ expr emit

    def _as_i64(self, val: str, kind: str) -> str:
        if kind == "i64":
            return val
        return f"(int64_t)({val})"

    def _cast_kind(self, val: str, kind: str, target: str) -> str:
        if kind == target:
            return val
        return f"({_CTYPE[target]})({val})"

    def _expr(self, expr: Expr) -> Tuple[str, str]:
        """Emit ``expr``; returns ``(c_value, kind)`` with kind in _CTYPE."""
        if isinstance(expr, Const):
            if isinstance(expr.value, float):
                return _float_literal(expr.value), "f64"
            return _int_literal(expr.value), "i64"
        if isinstance(expr, Var):
            if self.value_scope is not None:
                ident = self.value_scope.get(expr.name)
                if ident is None:
                    raise CGenError(f"unbound variable {expr.name!r} in value expression")
                return ident, "i64"
            ident = self.vars.get(expr.name)
            if ident is None:
                ident = self._env_var(expr.name)
            return ident, "i64"
        if isinstance(expr, Param):
            return self._param(expr)
        if isinstance(expr, BufferAccess):
            return self._buffer_load(expr)
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, UnOp):
            return self._unop(expr)
        if isinstance(expr, Cast):
            val, kind = self._expr(expr.a)
            return self._wrap_cast(val, kind, expr.dtype)
        if isinstance(expr, Select):
            cond, ck = self._expr(expr.cond)
            a, ak = self._expr(expr.if_true)
            b, bk = self._expr(expr.if_false)
            k = _promote(ak, bk)
            ct = _CTYPE[k]
            zero = "0.0" if ck != "i64" else "0"
            out = self._temp(ct, f"(({cond}) != {zero}) ? "
                                 f"({ct})({a}) : ({ct})({b})")
            return out, k
        if isinstance(expr, Call):
            return self._call(expr)
        raise CGenError(f"cannot emit expression node {type(expr).__name__}")

    def _buffer_load(self, expr: BufferAccess) -> Tuple[str, str]:
        view = self._view(expr.buffer)
        if len(expr.indices) != view.rank:
            raise CGenError(
                f"access to {expr.buffer!r} has {len(expr.indices)} indices, "
                f"buffer rank is {view.rank}")
        terms = [view.base] if view.base != "0" else []
        # indices are innermost-first: position p addresses numpy axis rank-1-p
        for position, index in enumerate(expr.indices):
            axis = view.rank - 1 - position
            val, kind = self._expr(index)
            idx = self._temp("int64_t", self._as_i64(val, kind))
            # branchless numpy-style negative wrap: idx += dim when idx < 0
            wrapped = self._temp(
                "int64_t", f"{idx} + (({idx} >> 63) & {view.dims[axis]})")
            terms.append(f"{wrapped} * {view.strides[axis]}")
        flat = self._temp("int64_t", " + ".join(terms) if terms else "0")
        raw = self._temp(view.ctype, f"{view.ptr}[{flat}]")
        if expr.dtype.is_float:
            return self._temp("double", f"(double){raw}"), "f64"
        return self._temp("int64_t", f"(int64_t){raw}"), "i64"

    def _binop(self, expr: BinOp) -> Tuple[str, str]:
        a, ak = self._expr(expr.a)
        b, bk = self._expr(expr.b)
        op = expr.op
        if op in (Op.ADD, Op.SUB, Op.MUL):
            k = _promote(ak, bk)
            if k == "i64":
                c_op = {Op.ADD: "+", Op.SUB: "-", Op.MUL: "*"}[op]
                out = self._temp(
                    "int64_t",
                    f"(int64_t)((uint64_t){a} {c_op} (uint64_t){b})")
                return out, "i64"
            ct = _CTYPE[k]
            ca = self._cast_kind(a, ak, k)
            cb = self._cast_kind(b, bk, k)
            return self._temp(ct, f"{ca} {op} {cb}"), k
        if op == Op.DIV:
            if expr.dtype.is_float:
                k = "f32" if (ak == "f32" and bk == "f32") else "f64"
                ct = _CTYPE[k]
                ca = self._cast_kind(a, ak, k)
                cb = self._cast_kind(b, bk, k)
                return self._temp(ct, f"{ca} / {cb}"), k
            return self._int_divmod(a, ak, b, bk, mod=False)
        if op == Op.MOD:
            return self._int_divmod(a, ak, b, bk, mod=True)
        if op in (Op.LT, Op.LE, Op.GT, Op.GE, Op.EQ, Op.NE):
            k = _promote(ak, bk)
            ca = self._cast_kind(a, ak, k)
            cb = self._cast_kind(b, bk, k)
            return self._temp("int64_t", f"(int64_t)({ca} {op} {cb})"), "i64"
        if op in (Op.SHR, Op.SAR):
            ia = self._as_i64(a, ak)
            ib = self._as_i64(b, bk)
            return self._temp("int64_t", f"({ia}) >> (({ib}) & 63)"), "i64"
        if op == Op.SHL:
            ia = self._as_i64(a, ak)
            ib = self._as_i64(b, bk)
            return self._temp(
                "int64_t",
                f"(int64_t)((uint64_t)({ia}) << (({ib}) & 63))"), "i64"
        if op in (Op.AND, Op.OR, Op.XOR):
            ia = self._as_i64(a, ak)
            ib = self._as_i64(b, bk)
            return self._temp("int64_t", f"({ia}) {op} ({ib})"), "i64"
        if op in (Op.MIN, Op.MAX):
            k = _promote(ak, bk)
            ca = self._cast_kind(a, ak, k)
            cb = self._cast_kind(b, bk, k)
            if k == "i64":
                cmp = "<" if op == Op.MIN else ">"
                ta = self._temp("int64_t", ca)
                tb = self._temp("int64_t", cb)
                return self._temp(
                    "int64_t", f"({ta} {cmp} {tb}) ? {ta} : {tb}"), "i64"
            fn = "rp_fmin" if op == Op.MIN else "rp_fmax"
            bits = "32" if k == "f32" else "64"
            return self._temp(_CTYPE[k], f"{fn}{bits}({ca}, {cb})"), k
        raise CGenError(f"cannot emit binary operator {op!r}")

    def _int_divmod(self, a: str, ak: str, b: str, bk: str, mod: bool) -> Tuple[str, str]:
        ta = self._temp("int64_t", self._as_i64(a, ak))
        tb = self._temp("int64_t", self._as_i64(b, bk))
        self.emit(f"if ({tb} == 0) {{ return 1; }}")
        self._counter += 1
        out = f"t{self._counter}"
        self.emit(f"int64_t {out};")
        if mod:
            # INT64_MIN % -1 is UB in C; the truncated remainder is always 0.
            self.emit(f"if ({tb} == -1) {{ {out} = 0; }} "
                      f"else {{ {out} = {ta} % {tb}; }}")
        else:
            # INT64_MIN / -1 is UB in C; wrap like the int64 negation does.
            self.emit(f"if ({tb} == -1) {{ {out} = (int64_t)(0 - (uint64_t){ta}); }} "
                      f"else {{ {out} = {ta} / {tb}; }}")
        return out, "i64"

    def _unop(self, expr: UnOp) -> Tuple[str, str]:
        a, ak = self._expr(expr.a)
        if expr.op == Op.NEG:
            if ak == "i64":
                return self._temp(
                    "int64_t", f"(int64_t)(0 - (uint64_t){a})"), "i64"
            return self._temp(_CTYPE[ak], f"-({a})"), ak
        if expr.op == Op.NOT:
            ia = self._as_i64(a, ak)
            return self._temp("int64_t", f"~({ia})"), "i64"
        if expr.op == Op.ABS:
            if ak == "i64":
                return self._temp(
                    "int64_t",
                    f"({a} < 0) ? (int64_t)(0 - (uint64_t){a}) : {a}"), "i64"
            fn = "fabsf" if ak == "f32" else "fabs"
            return self._temp(_CTYPE[ak], f"{fn}({a})"), ak
        raise CGenError(f"cannot emit unary operator {expr.op!r}")

    def _call(self, expr: Call) -> Tuple[str, str]:
        if expr.func == "round":
            a, ak = self._expr(expr.args[0])
            if ak == "f32":
                return self._temp("int64_t", f"(int64_t)rintf({a})"), "i64"
            ca = self._cast_kind(a, ak, "f64")
            return self._temp("int64_t", f"(int64_t)rint({ca})"), "i64"
        if expr.func in ("sqrt", "floor", "ceil"):
            a, ak = self._expr(expr.args[0])
            if ak == "f32":
                return self._temp("float", f"{expr.func}f({a})"), "f32"
            ca = self._cast_kind(a, ak, "f64")
            return self._temp("double", f"{expr.func}({ca})"), "f64"
        raise CGenError(f"cannot emit call to {expr.func!r}")

    def _wrap_cast(self, val: str, kind: str, dtype: DType) -> Tuple[str, str]:
        """``realize._wrap_cast`` semantics: wrap mod 2**bits with signed fix."""
        if dtype.is_float:
            k = "f32" if dtype.bits == 32 else "f64"
            return self._cast_kind(val, kind, k), k
        iv = self._as_i64(val, kind)
        bits = dtype.bits
        if bits == 64:
            if dtype.is_signed:
                return self._temp("int64_t", iv), "i64"
            return self._temp("int64_t", f"(int64_t)(uint64_t)({iv})"), "i64"
        if dtype.is_signed:
            out = f"(int64_t)(int{bits}_t)(uint{bits}_t)({iv})"
        else:
            out = f"(int64_t)(uint{bits}_t)({iv})"
        return self._temp("int64_t", out), "i64"

    # --------------------------------------------------------- scalar exprs

    def _scalar(self, value) -> str:
        """Emit a ``Scalar`` (int or Expr) as an int64 C value."""
        if isinstance(value, int) and not isinstance(value, bool):
            return _int_literal(value)
        val, kind = self._expr(value)
        return self._as_i64(val, kind)

    # ----------------------------------------------------------- stmt emit

    def _stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                self._stmt(child)
        elif isinstance(stmt, For):
            self._for(stmt)
        elif isinstance(stmt, Let):
            self._let(stmt)
        elif isinstance(stmt, Allocate):
            self._allocate(stmt)
        elif isinstance(stmt, ProducerConsumer):
            self.emit(f"/* produce {stmt.name} */")
            self._stmt(stmt.produce)
            self.emit(f"/* consume {stmt.name} */")
            self._stmt(stmt.consume)
        elif isinstance(stmt, IfThenElse):
            cond = self._temp("int64_t", self._scalar(stmt.condition))
            self.emit(f"if ({cond} != 0) {{")
            self.depth += 1
            self._stmt(stmt.then_case)
            self.depth -= 1
            if stmt.else_case is not None:
                self.emit("} else {")
                self.depth += 1
                self._stmt(stmt.else_case)
                self.depth -= 1
            self.emit("}")
        elif isinstance(stmt, Store):
            self._store(stmt)
        elif isinstance(stmt, ReduceLoop):
            self._reduce(stmt)
        elif isinstance(stmt, AccumMerge):
            self._merge(stmt)
        elif isinstance(stmt, PadEdge):
            self._pad_edge(stmt)
        else:
            raise CGenError(f"cannot emit statement node {type(stmt).__name__}")

    def _for(self, stmt: For) -> None:
        self.emit("{")
        self.depth += 1
        mn = self._temp("int64_t", self._scalar(stmt.min))
        ext = self._temp("int64_t", self._scalar(stmt.extent))
        end = self._temp("int64_t", f"{mn} + {ext}")
        ident = self._fresh(f"v_{stmt.name}")
        self.emit(f"for (int64_t {ident} = {mn}; {ident} < {end}; ++{ident}) {{")
        self.depth += 1
        saved = self.vars.get(stmt.name)
        self.vars[stmt.name] = ident
        self._stmt(stmt.body)
        if saved is None:
            self.vars.pop(stmt.name, None)
        else:
            self.vars[stmt.name] = saved
        self.depth -= 1
        self.emit("}")
        self.depth -= 1
        self.emit("}")

    def _let(self, stmt: Let) -> None:
        self.emit("{")
        self.depth += 1
        ident = self._fresh(f"v_{stmt.name}")
        self.emit(f"int64_t {ident} = {self._scalar(stmt.value)};")
        saved = self.vars.get(stmt.name)
        self.vars[stmt.name] = ident
        self._stmt(stmt.body)
        if saved is None:
            self.vars.pop(stmt.name, None)
        else:
            self.vars[stmt.name] = saved
        self.depth -= 1
        self.emit("}")

    def _allocate(self, stmt: Allocate) -> None:
        self.emit(f"{{ /* allocate {stmt.buffer} */")
        self.depth += 1
        rank = len(stmt.extents)
        dims = [self._temp("int64_t", self._scalar(e)) for e in stmt.extents]
        elems = dims[0]
        for d in dims[1:]:
            elems = self._temp("int64_t", f"{elems} * {d}")
        ctype = _storage_ctype(stmt.dtype)
        ptr = self._fresh(f"a_{stmt.buffer}")
        self.emit(f"{ctype} * restrict {ptr} = "
                  f"({ctype} *)malloc((size_t){elems} * sizeof({ctype}));")
        self.emit(f"if (!{ptr}) {{ return 3; }}")
        if stmt.fill is not None:
            idx = self._fresh("fill_i")
            fill = (_float_literal(stmt.fill) if isinstance(stmt.fill, float)
                    else _int_literal(stmt.fill))
            self.emit(f"for (int64_t {idx} = 0; {idx} < {elems}; ++{idx}) "
                      f"{{ {ptr}[{idx}] = ({ctype})({fill}); }}")
        strides = [""] * rank
        acc = "1"
        for axis in range(rank - 1, -1, -1):
            strides[axis] = self._temp("int64_t", acc)
            acc = f"{strides[axis]} * {dims[axis]}"
        saved = self.bufs.get(stmt.buffer)
        self.bufs[stmt.buffer] = _BufView(
            ptr=ptr, ctype=ctype, dtype=stmt.dtype,
            dims=dims, strides=strides)
        self._stmt(stmt.body)
        if saved is None:
            self.bufs.pop(stmt.buffer, None)
        else:
            self.bufs[stmt.buffer] = saved
        self.emit(f"free({ptr});")
        self.depth -= 1
        self.emit("}")

    # ------------------------------------------------------------- Store

    def _store(self, stmt: Store) -> None:
        func = stmt.func
        if func.value is None:
            raise CGenError(f"store of {func.name!r} has no pure definition")
        rank = len(stmt.extent)
        if rank == 0:
            raise CGenError("rank-0 store")
        self.emit(f"{{ /* store {stmt.label or func.name} */")
        self.depth += 1
        # Param expressions are evaluated against the *outer* parameter scope
        # (mirrors base._exec_store), so collect values first, register after.
        local_values: List[Tuple[str, str]] = []
        for pname, pexpr in stmt.param_exprs.items():
            local_values.append((pname, self._temp("int64_t", self._scalar(pexpr))))
        offs = [self._temp("int64_t", self._scalar(v)) for v in stmt.offset]
        exts = [self._temp("int64_t", self._scalar(v)) for v in stmt.extent]
        orgs = [self._temp("int64_t", self._scalar(v)) for v in stmt.eval_origin]
        guard = " && ".join(f"{e} > 0" for e in exts)
        self.emit(f"if ({guard}) {{")
        self.depth += 1
        view = self._view(stmt.buffer)
        if view.rank != rank:
            raise CGenError(
                f"store extent rank {rank} != buffer rank {view.rank} "
                f"for {stmt.buffer!r}")
        if len(func.variables) != rank:
            raise CGenError(
                f"func {func.name!r} has {len(func.variables)} variables, "
                f"store region rank is {rank}")
        saved_locals = dict(self.local_params)
        for pname, ident in local_values:
            self.local_params[pname] = ident
        width = vectorize_width(func.schedule)

        def body(loop_idx: List[str]) -> None:
            coords = [self._temp("int64_t", f"{orgs[a]} + {loop_idx[a]}")
                      for a in range(rank)]
            scope = {}
            for position, var in enumerate(func.variables):
                scope[var.name] = coords[rank - 1 - position]
            saved_scope = self.value_scope
            self.value_scope = scope
            val, kind = self._expr(func.value)
            wrapped, _ = self._wrap_cast(val, kind, func.dtype)
            self.value_scope = saved_scope
            terms = ([view.base] if view.base != "0" else [])
            for a in range(rank):
                terms.append(f"({offs[a]} + {loop_idx[a]}) * {view.strides[a]}")
            flat = self._temp("int64_t", " + ".join(terms))
            self.emit(f"{view.ptr}[{flat}] = ({view.ctype})({wrapped});")

        # serial loops over the outer axes, SIMD split on the innermost
        outer_idx: List[str] = []
        for a in range(rank - 1):
            ident = self._fresh(f"i{a}")
            self.emit(f"for (int64_t {ident} = 0; {ident} < {exts[a]}; ++{ident}) {{")
            self.depth += 1
            outer_idx.append(ident)
        last = rank - 1
        if width >= 2:
            iv = self._fresh("iv")
            lane = self._fresh("lane")
            self.emit(f"int64_t {iv} = 0;")
            self.emit(f"for (; {iv} + {width} <= {exts[last]}; {iv} += {width}) {{")
            self.depth += 1
            self.emit("#pragma GCC ivdep")
            self.emit(f"for (int64_t {lane} = 0; {lane} < {width}; ++{lane}) {{")
            self.depth += 1
            inner = self._temp("int64_t", f"{iv} + {lane}")
            body(outer_idx + [inner])
            self.depth -= 1
            self.emit("}")
            self.depth -= 1
            self.emit("}")
            tail = self._fresh("tail")
            self.emit(f"for (int64_t {tail} = {iv}; {tail} < {exts[last]}; ++{tail}) {{")
            self.depth += 1
            body(outer_idx + [tail])
            self.depth -= 1
            self.emit("}")
        else:
            ident = self._fresh(f"i{last}")
            self.emit(f"for (int64_t {ident} = 0; {ident} < {exts[last]}; ++{ident}) {{")
            self.depth += 1
            body(outer_idx + [ident])
            self.depth -= 1
            self.emit("}")
        for _ in range(rank - 1):
            self.depth -= 1
            self.emit("}")
        self.local_params = saved_locals
        self.depth -= 1
        self.emit("}")
        self.depth -= 1
        self.emit("}")

    # --------------------------------------------------------- ReduceLoop

    def _reduce(self, stmt: ReduceLoop) -> None:
        func = stmt.func
        if func.reduction is None:
            raise CGenError(f"reduce loop over {func.name!r} without a reduction")
        rdom, index_exprs, update = func.reduction
        increment = _strip_self_reference(update, func.name)
        check_exprs = list(index_exprs) + [increment if increment is not None else update]
        for e in check_exprs:
            for node in e.walk():
                if isinstance(node, BufferAccess) and node.buffer == func.name:
                    raise CGenError(
                        f"reduction over {func.name!r} reads its own accumulator; "
                        "sequential C execution would diverge from np.add.at")
        n = len(stmt.source_extent)
        self.emit(f"{{ /* reduce {stmt.label or func.name} */")
        self.depth += 1
        orgs = [self._temp("int64_t", self._scalar(v)) for v in stmt.source_origin]
        exts = [self._temp("int64_t", self._scalar(v)) for v in stmt.source_extent]
        guard = " && ".join(f"{e} > 0" for e in exts)
        self.emit(f"if ({guard}) {{")
        self.depth += 1
        full = self._view(stmt.buffer)
        if stmt.target_index is not None:
            ti = self._temp("int64_t", self._scalar(stmt.target_index))
            base = self._temp(
                "int64_t",
                (f"{full.base} + " if full.base != "0" else "") +
                f"{ti} * {full.strides[0]}")
            slab = _BufView(ptr=full.ptr, ctype=full.ctype, dtype=full.dtype,
                            dims=list(full.dims[1:]),
                            strides=list(full.strides[1:]), base=base)
        else:
            slab = full
        rvars = rdom.vars()
        if len(rvars) != n:
            raise CGenError("reduction domain rank mismatch")
        if len(index_exprs) != slab.rank:
            raise CGenError(
                f"reduction writes {len(index_exprs)} indices, target rank "
                f"is {slab.rank}")
        # loop counters run over global source coordinates
        counters: List[str] = []
        for a in range(n):
            ident = self._fresh(f"c{a}")
            end = self._temp("int64_t", f"{orgs[a]} + {exts[a]}")
            self.emit(f"for (int64_t {ident} = {orgs[a]}; {ident} < {end}; ++{ident}) {{")
            self.depth += 1
            counters.append(ident)
        scope = {}
        for position, var in enumerate(rvars):
            scope[var.name] = counters[n - 1 - position]
        saved_scope = self.value_scope
        self.value_scope = scope
        # np_index = reversed(indices): index_exprs[p] addresses target
        # numpy axis rank-1-p, with negative wrap then a bounds check
        # (np.add.at raises IndexError; we return rc 2).
        terms = [slab.base] if slab.base != "0" else []
        for position, index in enumerate(index_exprs):
            axis = slab.rank - 1 - position
            val, kind = self._expr(index)
            idx = self._temp("int64_t", self._as_i64(val, kind))
            wrapped = self._temp(
                "int64_t", f"{idx} + (({idx} >> 63) & {slab.dims[axis]})")
            self.emit(f"if ({wrapped} < 0 || {wrapped} >= {slab.dims[axis]}) "
                      "{ return 2; }")
            terms.append(f"{wrapped} * {slab.strides[axis]}")
        flat = self._temp("int64_t", " + ".join(terms) if terms else "0")
        sto = slab.ctype
        if increment is not None:
            # np.add.at: cast the increment to the accumulator dtype first,
            # then accumulate with accumulator-dtype wraparound.
            val, kind = self._expr(increment)
            inc = self._temp(sto, f"({sto})({self._as_i64(val, kind) if func.dtype.is_integer else val})")
            if func.dtype.is_float:
                self.emit(f"{slab.ptr}[{flat}] = {slab.ptr}[{flat}] + {inc};")
            elif func.dtype.bits == 64:
                self.emit(f"{slab.ptr}[{flat}] = ({sto})((uint64_t){slab.ptr}[{flat}] "
                          f"+ (uint64_t){inc});")
            else:
                # widen to int64 for the add to dodge narrow signed-overflow
                # UB; the cast back wraps exactly like the NumPy accumulator.
                self.emit(f"{slab.ptr}[{flat}] = ({sto})((int64_t){slab.ptr}[{flat}] "
                          f"+ (int64_t){inc});")
        else:
            val, kind = self._expr(update)
            wrapped, _ = self._wrap_cast(val, kind, func.dtype)
            self.emit(f"{slab.ptr}[{flat}] = ({sto})({wrapped});")
        self.value_scope = saved_scope
        for _ in range(n):
            self.depth -= 1
            self.emit("}")
        self.depth -= 1
        self.emit("}")
        self.depth -= 1
        self.emit("}")

    # --------------------------------------------------------- AccumMerge

    def _merge(self, stmt: AccumMerge) -> None:
        self.emit(f"{{ /* merge {stmt.label or stmt.target} */")
        self.depth += 1
        tview = self._view(stmt.target)
        sview = self._view(stmt.source)
        if sview.rank != tview.rank + 1:
            raise CGenError(
                f"merge source rank {sview.rank} != target rank {tview.rank} + 1")
        idx = self._temp("int64_t", self._scalar(stmt.index))
        sbase = self._temp(
            "int64_t",
            (f"{sview.base} + " if sview.base != "0" else "") +
            f"{idx} * {sview.strides[0]}")
        elems = tview.dims[0] if tview.rank else "1"
        for d in tview.dims[1:]:
            elems = self._temp("int64_t", f"{elems} * {d}")
        i = self._fresh("m")
        self.emit(f"for (int64_t {i} = 0; {i} < {elems}; ++{i}) {{")
        self.depth += 1
        # slab.astype(target.dtype) then in-place add with target wraparound
        src = self._temp(tview.ctype, f"({tview.ctype}){sview.ptr}[{sbase} + {i}]")
        tb = f"{tview.base} + " if tview.base != "0" else ""
        dst = f"{tview.ptr}[{tb}{i}]"
        if tview.dtype.is_float:
            self.emit(f"{dst} = {dst} + {src};")
        elif tview.dtype.bits == 64:
            self.emit(f"{dst} = ({tview.ctype})((uint64_t){dst} + (uint64_t){src});")
        else:
            self.emit(f"{dst} = ({tview.ctype})((int64_t){dst} + (int64_t){src});")
        self.depth -= 1
        self.emit("}")
        self.depth -= 1
        self.emit("}")

    # ----------------------------------------------------------- PadEdge

    def _pad_edge(self, stmt: PadEdge) -> None:
        self.emit(f"{{ /* pad_edge {stmt.buffer} */")
        self.depth += 1
        view = self._view(stmt.buffer)
        rank = view.rank
        offs = [self._temp("int64_t", self._scalar(v)) for v in stmt.offset]
        exts = [self._temp("int64_t", self._scalar(v)) for v in stmt.extent]

        def copy_loops(axis: int, lo: str, hi: str, src_term: str) -> None:
            """Rank-deep loops; ``axis`` runs [lo, hi), others full range."""
            self.emit("{")
            self.depth += 1
            idents: List[str] = []
            for a in range(rank):
                ident = self._fresh(f"p{a}")
                idents.append(ident)
                if a == axis:
                    self.emit(f"for (int64_t {ident} = {lo}; {ident} < {hi}; "
                              f"++{ident}) {{")
                else:
                    self.emit(f"for (int64_t {ident} = 0; {ident} < {view.dims[a]}; "
                              f"++{ident}) {{")
                self.depth += 1
            base = [view.base] if view.base != "0" else []
            dst_terms = base + [f"{idents[a]} * {view.strides[a]}" for a in range(rank)]
            src_terms = list(dst_terms)
            src_terms[len(base) + axis] = src_term
            dst = self._temp("int64_t", " + ".join(dst_terms))
            src = self._temp("int64_t", " + ".join(src_terms))
            self.emit(f"{view.ptr}[{dst}] = {view.ptr}[{src}];")
            for _ in range(rank):
                self.depth -= 1
                self.emit("}")
            self.depth -= 1
            self.emit("}")

        # Sequential per-axis replication: full-range inner loops copy
        # not-yet-padded ghosts on later axes, which those axes then fix —
        # exactly base._exec_pad_edge's corner propagation.
        for axis in range(rank):
            before = offs[axis]
            edge = self._temp("int64_t", f"{offs[axis]} + {exts[axis]}")
            self.emit(f"if ({before} > 0) {{")
            self.depth += 1
            copy_loops(axis, "0", before, f"{before} * {view.strides[axis]}")
            self.depth -= 1
            self.emit("}")
            self.emit(f"if ({view.dims[axis]} > {edge}) {{")
            self.depth += 1
            copy_loops(axis, edge, view.dims[axis],
                       f"({edge} - 1) * {view.strides[axis]}")
            self.depth -= 1
            self.emit("}")
        self.depth -= 1
        self.emit("}")

    # --------------------------------------------------------- assembly

    def finish(self) -> Tuple[str, SegmentSpec]:
        preamble: List[str] = [
            "    (void)bufs; (void)shapes; (void)env; "
            "(void)iparams; (void)fparams;",
        ]
        offset = 0
        ranks: List[int] = []
        for slot, name in enumerate(self.buf_order):
            view = self.bufs.get(name)
            # the view may have been popped if an Allocate shadowed it;
            # external views are never popped, and only external buffers
            # land in buf_order (Allocate views bypass _view()).
            assert view is not None and view.ptr == f"b{slot}"
            ranks.append(view.rank)
            preamble.append(
                f"    {view.ctype} * restrict b{slot} = "
                f"({view.ctype} *)bufs[{slot}];")
            for a in range(view.rank):
                preamble.append(
                    f"    const int64_t b{slot}_d{a} = shapes[{offset + a}];")
            acc = "1"
            for a in range(view.rank - 1, -1, -1):
                preamble.append(f"    const int64_t b{slot}_s{a} = {acc};")
                acc = f"b{slot}_s{a} * b{slot}_d{a}"
            offset += view.rank
        for name in self.env_order:
            ident = self.env_slots[name]
            preamble.append(
                f"    const int64_t {ident} = env[{self.env_order.index(name)}];")
        for name in self.iparam_order:
            ident = self.iparam_slots[name]
            preamble.append(
                f"    const int64_t {ident} = iparams[{self.iparam_order.index(name)}];")
        for name in self.fparam_order:
            ident = self.fparam_slots[name]
            preamble.append(
                f"    const double {ident} = fparams[{self.fparam_order.index(name)}];")
        header = (f"int64_t {self.name}(void **bufs, const int64_t *shapes, "
                  "const int64_t *env, const int64_t *iparams, "
                  "const double *fparams) {")
        text = "\n".join([header] + preamble + self.lines + ["    return 0;", "}"])
        spec = SegmentSpec(
            name=self.name,
            buffers=tuple(self.buf_order),
            ranks=tuple(ranks),
            env_vars=tuple(self.env_order),
            int_params=tuple(self.iparam_order),
            float_params=tuple(self.fparam_order),
            param_defaults=dict(self.param_defaults),
        )
        return text, spec


_PRELUDE = """\
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

/* NaN-propagating min/max matching np.minimum / np.maximum. */
static inline float rp_fmin32(float a, float b) {
    return (a != a) ? a : ((b != b) ? b : ((a < b) ? a : b));
}
static inline float rp_fmax32(float a, float b) {
    return (a != a) ? a : ((b != b) ? b : ((a > b) ? a : b));
}
static inline double rp_fmin64(double a, double b) {
    return (a != a) ? a : ((b != b) ? b : ((a < b) ? a : b));
}
static inline double rp_fmax64(double a, double b) {
    return (a != a) ? a : ((b != b) ? b : ((a > b) ? a : b));
}
"""


class _NestGenerator:
    def __init__(self, lowered, frame_dtype: DType,
                 param_kinds: Mapping[str, str]):
        self.lowered = lowered
        self.param_kinds = dict(param_kinds)
        self.functions: List[str] = []
        self.segments: List[SegmentSpec] = []
        self.segment_for: Dict[int, SegmentSpec] = {}
        self.parallel_body: Dict[int, SegmentSpec] = {}
        frame_rank = len(lowered.frame_shape)
        self.registry: Dict[str, Tuple[DType, int]] = {
            lowered.input_name: (frame_dtype, frame_rank),
            lowered.output: (lowered.out_dtype, frame_rank),
        }
        for node in lowered.stmt.walk():
            if isinstance(node, Allocate):
                self.registry[node.buffer] = (node.dtype, len(node.extents))

    def _emit_segment(self, stmt: Stmt) -> SegmentSpec:
        name = f"rp_seg{len(self.segments)}"
        emitter = _SegmentEmitter(name, self.registry, self.param_kinds)
        emitter._stmt(stmt)
        text, spec = emitter.finish()
        self.functions.append(text)
        self.segments.append(spec)
        return spec

    def _plan(self, stmt: Stmt) -> None:
        if not _contains_parallel(stmt):
            self.segment_for[id(stmt)] = self._emit_segment(stmt)
            return
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                self._plan(child)
        elif isinstance(stmt, Let):
            self._plan(stmt.body)
        elif isinstance(stmt, Allocate):
            self._plan(stmt.body)
        elif isinstance(stmt, ProducerConsumer):
            self._plan(stmt.produce)
            self._plan(stmt.consume)
        elif isinstance(stmt, IfThenElse):
            self._plan(stmt.then_case)
            if stmt.else_case is not None:
                self._plan(stmt.else_case)
        elif isinstance(stmt, For):
            if stmt.kind == "parallel":
                # serial fallback: the whole loop as one segment (parallel
                # loops inside are emitted as plain C for loops)
                self.segment_for[id(stmt)] = self._emit_segment(stmt)
                if not _contains_parallel(stmt.body):
                    self.parallel_body[id(stmt)] = self._emit_segment(stmt.body)
                else:
                    self._plan(stmt.body)
            else:
                self._plan(stmt.body)
        else:
            raise CGenError(
                f"parallel loop nested inside {type(stmt).__name__}")

    def generate(self) -> NestProgram:
        self._plan(self.lowered.stmt)
        source = _PRELUDE + "\n" + "\n\n".join(self.functions) + "\n"
        cdef = "\n".join(
            f"int64_t {seg.name}(void **bufs, const int64_t *shapes, "
            "const int64_t *env, const int64_t *iparams, "
            "const double *fparams);"
            for seg in self.segments)
        return NestProgram(
            source=source,
            cdef=cdef,
            segments=self.segments,
            segment_for=self.segment_for,
            parallel_body=self.parallel_body,
        )


def generate_nest(lowered, frame_dtype: DType,
                  param_kinds: Optional[Mapping[str, str]] = None) -> NestProgram:
    """Compile a :class:`LoweredPipeline`'s nest to a C translation unit.

    ``frame_dtype`` is the input frame's element type; ``param_kinds`` maps
    parameter names to ``"int"``/``"float"`` (defaults inferred from each
    ``Param`` node's default value when absent).  Raises :class:`CGenError`
    when the nest contains anything the emitter cannot translate — callers
    degrade to the compiled-NumPy backend.
    """
    return _NestGenerator(lowered, frame_dtype, param_kinds or {}).generate()
