"""Execution backends behind a common interface.

Every engine — the tree-walking interpreter (the bit-exactness oracle) and
the compiled fused-NumPy engine — implements :class:`Backend`: whole-Func
realization plus a region evaluator, which is the primitive the shared
lowered-IR executor (:meth:`Backend.execute`) calls for every
:class:`~repro.ir.stmt.Store` in a lowered pipeline.  Both backends are
therefore *consumers of the same lowered loop nest*: scheduling decisions
(compute_root / compute_at, tiling, parallel tiles) live in the
:class:`~repro.halide.lower.LoweredPipeline`, not in the engines, and any
future backend (C, LLVM, GPU) plugs in by implementing the same two
primitives.
"""

from .base import Backend
from .compiled import CompiledBackend
from .interp import InterpBackend

_BACKENDS: dict[str, Backend] = {
    "interp": InterpBackend(),
    "compiled": CompiledBackend(),
}


def backend_names() -> tuple[str, ...]:
    return tuple(_BACKENDS)


def get_backend(name: str) -> Backend:
    """The registered backend for an engine name (``ValueError`` if none)."""
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ValueError(f"unknown engine {name!r}; expected one of "
                         f"{tuple(_BACKENDS)}")
    return backend


__all__ = ["Backend", "CompiledBackend", "InterpBackend", "backend_names",
           "get_backend"]
