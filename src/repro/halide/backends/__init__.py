"""Execution backends behind a common interface.

Every engine — the tree-walking interpreter (the bit-exactness oracle),
the compiled fused-NumPy engine, and the native whole-nest C engine —
implements :class:`Backend`: whole-Func realization plus a region
evaluator, which is the primitive the shared lowered-IR executor
(:meth:`Backend.execute`) calls for every :class:`~repro.ir.stmt.Store`
in a lowered pipeline.  All backends are therefore *consumers of the same
lowered loop nest*: scheduling decisions (compute_root / compute_at,
tiling, parallel tiles, vectorize) live in the
:class:`~repro.halide.lower.LoweredPipeline`, not in the engines.

The native backend (:mod:`.native` + :mod:`.cgen`) demonstrates the plug
point for ahead-of-time codegen: it overrides :meth:`Backend.execute` to
run whole C-compiled segments (GIL released) and degrades per frame to
the compiled engine — bit-identically — whenever a toolchain or cffi is
missing, so it is safe to select unconditionally.
"""

from .base import Backend
from .compiled import CompiledBackend
from .interp import InterpBackend
from .native import NativeBackend

_BACKENDS: dict[str, Backend] = {
    "interp": InterpBackend(),
    "compiled": CompiledBackend(),
    "native": NativeBackend(),
}


def backend_names() -> tuple[str, ...]:
    return tuple(_BACKENDS)


def get_backend(name: str) -> Backend:
    """The registered backend for an engine name (``ValueError`` if none)."""
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ValueError(f"unknown engine {name!r}; expected one of "
                         f"{tuple(_BACKENDS)}")
    return backend


__all__ = ["Backend", "CompiledBackend", "InterpBackend", "NativeBackend",
           "backend_names", "get_backend"]
