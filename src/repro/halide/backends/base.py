"""The backend interface and the shared lowered-IR executor.

A backend supplies two primitives:

* :meth:`Backend.realize_func` — whole-Func realization (the legacy entry
  point used by :func:`repro.halide.realize.realize`, including reductions);
* :meth:`Backend.evaluate_region` — evaluate a *pure* Func vectorized over
  one rectangular region (NumPy axis order), the primitive behind every
  lowered :class:`~repro.ir.stmt.Store`.

Everything else about executing a lowered pipeline — walking the loop nest,
allocating scratch buffers, branching between interior and border stores,
edge-replicating ghost zones, fanning parallel loops out across the shared
worker pool — is backend-independent and lives in :meth:`Backend.execute`.
That keeps the engines honest: the interpreter and the compiled engine run
the *same* loop nest with the same bounds, so a differential test that
compares them exercises the lowering itself, not two unrelated schedules.
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional

import numpy as np

from ...ir import (
    AccumMerge,
    Allocate,
    Block,
    Expr,
    For,
    IfThenElse,
    Let,
    PadEdge,
    ProducerConsumer,
    ReduceLoop,
    Stmt,
    Store,
)
from ...ir import BinOp, Const, Op, Param, UnOp, Var
from ..parallel import choose_tile_executor, record_execution, submit_task
from ..realize import RealizationError, _evaluate

_SCALAR_OPS = {
    Op.ADD: lambda a, b: a + b,
    Op.SUB: lambda a, b: a - b,
    Op.MUL: lambda a, b: a * b,
    Op.MIN: min,
    Op.MAX: max,
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.LT: lambda a, b: int(a < b),
    Op.LE: lambda a, b: int(a <= b),
    Op.GT: lambda a, b: int(a > b),
    Op.GE: lambda a, b: int(a >= b),
    Op.EQ: lambda a, b: int(a == b),
    Op.NE: lambda a, b: int(a != b),
}


def _scalar_expr(expr, env: Mapping, params: Mapping) -> int:
    """Fast integer evaluation of loop-nest scalar expressions.

    The lowering builds bounds from Const/Var/Param and
    add/sub/mul/min/max/comparison nodes; evaluating them through the
    vectorized interpreter would allocate a NumPy array per node, which
    dominates small-tile execution.  Anything outside that vocabulary falls
    back to the interpreter for full generality.
    """
    kind = type(expr)
    if kind is Const:
        return int(expr.value)
    if kind is Var:
        value = env.get(expr.name)
        if value is None:
            raise RealizationError(f"unbound loop variable {expr.name}")
        return int(value)
    if kind is Param:
        return int(params.get(expr.name, expr.value))
    if kind is BinOp:
        fn = _SCALAR_OPS.get(expr.op)
        if fn is not None:
            return fn(_scalar_expr(expr.a, env, params),
                      _scalar_expr(expr.b, env, params))
    if kind is UnOp and expr.op == Op.NEG:
        return -_scalar_expr(expr.a, env, params)
    return int(_evaluate(expr, env, {}, params))


class _ExecState:
    """Per-execution bookkeeping shared by the Stmt walkers."""

    __slots__ = ("params", "stats", "frame_shape", "lock")

    def __init__(self, params: dict, stats: dict, frame_shape: tuple) -> None:
        self.params = params
        self.stats = stats
        self.frame_shape = frame_shape
        self.lock = threading.Lock()

    def tally(self, key: str, amount: int = 1) -> None:
        with self.lock:
            self.stats[key] = self.stats.get(key, 0) + amount

    def track_scratch(self, name: str, shape: tuple[int, ...]) -> None:
        with self.lock:
            elems = 1
            for extent in shape:
                elems *= extent
            peak = self.stats.get("scratch_peak_elems", 0)
            if elems > peak:
                self.stats["scratch_peak_elems"] = elems
            shapes = self.stats.setdefault("scratch_shapes", {})
            previous = shapes.get(name)
            if previous is None or elems > int(np.prod(previous)):
                shapes[name] = tuple(shape)


def _scalar(value, env: Mapping, params: Mapping) -> int:
    """Evaluate a loop-nest scalar (int, or Expr over loop vars/params)."""
    if isinstance(value, int):
        return value
    return _scalar_expr(value, env, params)


class Backend:
    """Interface every execution engine implements."""

    name: str = ""

    # -- primitives ----------------------------------------------------------

    def realize_func(self, func, shape: tuple[int, ...],
                     buffers: Mapping[str, np.ndarray],
                     params: Mapping[str, float]) -> np.ndarray:
        """Realize one Func over its output domain (innermost-first shape)."""
        raise NotImplementedError

    def evaluate_region(self, func, origin: tuple[int, ...],
                        extent: tuple[int, ...],
                        buffers: Mapping[str, np.ndarray],
                        params: Mapping[str, float]) -> np.ndarray:
        """Evaluate a pure Func over one region (NumPy axis order)."""
        raise NotImplementedError

    def reduce_region(self, func, out: np.ndarray, origin: tuple[int, ...],
                      extent: tuple[int, ...],
                      buffers: Mapping[str, np.ndarray],
                      params: Mapping[str, float]) -> np.ndarray:
        """Apply ``func``'s reduction update over one RDom sub-region.

        ``origin``/``extent`` restrict the sweep to a rectangle of the
        reduction source (NumPy axis order, global coordinates); the update
        mutates ``out`` in place.  The primitive behind every lowered
        :class:`~repro.ir.stmt.ReduceLoop`.
        """
        raise NotImplementedError

    def region_evaluator(self, func):
        """A reusable ``fn(origin, extent, buffers, params)`` for one Func.

        Backends that pay a per-call lookup (the compiled kernel cache key)
        override this to resolve it once; the executor memoizes the result
        on each Store node.
        """
        def evaluate(origin, extent, buffers, params):
            return self.evaluate_region(func, origin, extent, buffers, params)
        return evaluate

    def region_reducer(self, func):
        """A reusable ``fn(out, origin, extent, buffers, params)`` for one
        reduction Func (the :meth:`region_evaluator` analogue for
        :class:`~repro.ir.stmt.ReduceLoop` nodes)."""
        def reduce(out, origin, extent, buffers, params):
            return self.reduce_region(func, out, origin, extent, buffers,
                                      params)
        return reduce

    # -- lowered-IR execution ------------------------------------------------

    def execute(self, lowered, image: np.ndarray,
                params: Mapping[str, float] | None = None,
                stats: Optional[dict] = None) -> np.ndarray:
        """Run a :class:`~repro.halide.lower.LoweredPipeline` on one frame.

        ``stats``, when given, is filled with execution counters: stores,
        allocations, per-buffer peak scratch shapes, ``scratch_peak_elems``
        and parallel/serial loop tallies — the numbers the locality
        benchmark and ``--explain`` report.
        """
        frame = np.asarray(image)
        if frame.shape != lowered.frame_shape:
            raise RealizationError(
                f"lowered pipeline expects frame {lowered.frame_shape}, "
                f"got {frame.shape}")
        buffers: dict[str, np.ndarray] = {lowered.input_name: frame}
        output = np.empty(lowered.frame_shape,
                          dtype=lowered.out_dtype.to_numpy())
        buffers[lowered.output] = output
        state = _ExecState(params=dict(params or {}),
                           stats=stats if stats is not None else {},
                           frame_shape=lowered.frame_shape)
        self._exec(lowered.stmt, {}, buffers, state)
        return output

    def _exec(self, stmt: Stmt, env: dict, buffers: dict,
              state: _ExecState) -> None:
        if isinstance(stmt, Block):
            for inner in stmt.stmts:
                self._exec(inner, env, buffers, state)
            return
        if isinstance(stmt, Let):
            env[stmt.name] = _scalar(stmt.value, env, state.params)
            self._exec(stmt.body, env, buffers, state)
            return
        if isinstance(stmt, For):
            self._exec_for(stmt, env, buffers, state)
            return
        if isinstance(stmt, Allocate):
            extents = tuple(_scalar(e, env, state.params)
                            for e in stmt.extents)
            dtype = stmt.dtype.to_numpy()
            buffers[stmt.buffer] = np.empty(extents, dtype=dtype) \
                if stmt.fill is None else np.full(extents, stmt.fill,
                                                  dtype=dtype)
            state.tally("allocations")
            state.track_scratch(stmt.buffer, extents)
            try:
                self._exec(stmt.body, env, buffers, state)
            finally:
                del buffers[stmt.buffer]
            return
        if isinstance(stmt, ProducerConsumer):
            self._exec(stmt.produce, env, buffers, state)
            self._exec(stmt.consume, env, buffers, state)
            return
        if isinstance(stmt, IfThenElse):
            if _scalar(stmt.condition, env, state.params) != 0:
                self._exec(stmt.then_case, env, buffers, state)
            elif stmt.else_case is not None:
                self._exec(stmt.else_case, env, buffers, state)
            return
        if isinstance(stmt, Store):
            self._exec_store(stmt, env, buffers, state)
            return
        if isinstance(stmt, ReduceLoop):
            self._exec_reduce(stmt, env, buffers, state)
            return
        if isinstance(stmt, AccumMerge):
            self._exec_merge(stmt, env, buffers, state)
            return
        if isinstance(stmt, PadEdge):
            self._exec_pad_edge(stmt, env, buffers, state)
            return
        raise RealizationError(f"cannot execute {type(stmt).__name__}")

    def _exec_for(self, stmt: For, env: dict, buffers: dict,
                  state: _ExecState) -> None:
        start = _scalar(stmt.min, env, state.params)
        count = _scalar(stmt.extent, env, state.params)
        if count <= 0:
            return
        if stmt.kind == "parallel":
            # Iterations write disjoint regions (the lowering's contract),
            # so fan-out order cannot change results.  Each iteration gets
            # its own buffer scope: scratch allocated inside the loop body
            # stays thread-private, while the shared full-frame arrays are
            # reached through the same references.
            if choose_tile_executor(state.frame_shape, count):
                futures = [
                    submit_task(self._exec, stmt.body,
                                {**env, stmt.name: start + index},
                                dict(buffers), state)
                    for index in range(count)]
                for future in futures:
                    future.result()
                record_execution(True, count)
                state.tally("parallel_loops")
                return
            record_execution(False, count)
            state.tally("serial_loops")
        iter_env = dict(env)
        for index in range(count):
            iter_env[stmt.name] = start + index
            self._exec(stmt.body, iter_env, buffers, state)

    def _exec_store(self, stmt: Store, env: dict, buffers: dict,
                    state: _ExecState) -> None:
        params = state.params
        if stmt.param_exprs:
            params = dict(params)
            for name, value in stmt.param_exprs.items():
                params[name] = _scalar(value, env, state.params)
        offset = tuple(_scalar(o, env, state.params) for o in stmt.offset)
        extent = tuple(_scalar(e, env, state.params) for e in stmt.extent)
        if any(e <= 0 for e in extent):
            return
        eval_origin = tuple(_scalar(o, env, state.params)
                            for o in stmt.eval_origin)
        evaluate = stmt.cache.get(self.name)
        if evaluate is None:
            evaluate = self.region_evaluator(stmt.func)
            stmt.cache[self.name] = evaluate
        block = evaluate(eval_origin, extent, buffers, params)
        target = buffers.get(stmt.buffer)
        if target is None:
            raise RealizationError(f"no buffer {stmt.buffer} to store into")
        region = tuple(slice(o, o + e) for o, e in zip(offset, extent))
        target[region] = block
        state.tally("stores")

    def _exec_reduce(self, stmt: ReduceLoop, env: dict, buffers: dict,
                     state: _ExecState) -> None:
        target = buffers.get(stmt.buffer)
        if target is None:
            raise RealizationError(f"no buffer {stmt.buffer} to reduce into")
        if stmt.target_index is not None:
            target = target[_scalar(stmt.target_index, env, state.params)]
        origin = tuple(_scalar(o, env, state.params)
                       for o in stmt.source_origin)
        extent = tuple(_scalar(e, env, state.params)
                       for e in stmt.source_extent)
        if any(e <= 0 for e in extent):
            return
        reduce = stmt.cache.get(self.name)
        if reduce is None:
            reduce = self.region_reducer(stmt.func)
            stmt.cache[self.name] = reduce
        reduce(target, origin, extent, buffers, state.params)
        state.tally("reduce_sweeps")

    def _exec_merge(self, stmt: AccumMerge, env: dict, buffers: dict,
                    state: _ExecState) -> None:
        target = buffers.get(stmt.target)
        source = buffers.get(stmt.source)
        if target is None or source is None:
            raise RealizationError(
                f"no buffers {stmt.target}/{stmt.source} to merge")
        slab = source[_scalar(stmt.index, env, state.params)]
        np.add(target, slab.astype(target.dtype, copy=False), out=target)
        state.tally("merges")

    def _exec_pad_edge(self, stmt: PadEdge, env: dict, buffers: dict,
                       state: _ExecState) -> None:
        array = buffers.get(stmt.buffer)
        if array is None:
            raise RealizationError(f"no buffer {stmt.buffer} to pad")
        offset = [_scalar(o, env, state.params) for o in stmt.offset]
        extent = [_scalar(e, env, state.params) for e in stmt.extent]
        padded = False
        for axis in range(array.ndim):
            before = offset[axis]
            after = array.shape[axis] - offset[axis] - extent[axis]
            index = [slice(None)] * array.ndim
            source = [slice(None)] * array.ndim
            if before > 0:
                index[axis] = slice(0, before)
                source[axis] = slice(before, before + 1)
                array[tuple(index)] = array[tuple(source)]
                padded = True
            if after > 0:
                edge = offset[axis] + extent[axis]
                index[axis] = slice(edge, array.shape[axis])
                source[axis] = slice(edge - 1, edge)
                array[tuple(index)] = array[tuple(source)]
                padded = True
        if padded:
            state.tally("ghost_pads")
