"""Mini-Halide front-end objects.

Expressions reuse :mod:`repro.ir`; a :class:`Func` maps pure variables to one
expression (possibly wrapped in selects for predicated kernels) and may carry
a reduction update (histogram-style kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..ir import DType, Expr, UINT8, Var as IRVar


class Var(IRVar):
    """A pure loop variable (alias of the IR variable node)."""


@dataclass
class ImageParam:
    """An input buffer of the lifted kernel."""

    name: str
    dimensions: int
    dtype: DType = UINT8

    def __str__(self) -> str:
        return f"ImageParam({self.name}, {self.dtype.halide_name()}, {self.dimensions})"


@dataclass
class RDom:
    """A reduction domain over another buffer's extents."""

    name: str
    source: str                      # buffer whose bounds define the domain
    dimensions: int

    def vars(self) -> list[IRVar]:
        return [IRVar(f"r_{d}") for d in range(self.dimensions)]


@dataclass
class Schedule:
    """A (simulated) Halide schedule.

    The NumPy realizer always vectorizes; tiling controls the block size used
    when evaluating large outputs (affecting locality), and ``fuse_producers``
    controls whether producer functions are inlined or materialized.
    """

    tile_x: int = 0
    tile_y: int = 0
    vectorize: bool = True
    parallel: bool = False
    fuse_producers: bool = True

    def describe(self) -> str:
        parts = []
        if self.tile_x and self.tile_y:
            parts.append(f"tile({self.tile_x},{self.tile_y})")
        if self.vectorize:
            parts.append("vectorize")
        if self.parallel:
            parts.append("parallel")
        if self.fuse_producers:
            parts.append("compute_inline")
        return ".".join(parts) if parts else "root"


@dataclass
class Func:
    """A lifted Halide function."""

    name: str
    variables: list[IRVar]
    value: Optional[Expr] = None
    dtype: DType = UINT8
    #: Reduction update: (rdom, index_expr_per_dim, update_expr).
    reduction: Optional[tuple[RDom, list[Expr], Expr]] = None
    inputs: list[ImageParam] = field(default_factory=list)
    schedule: Schedule = field(default_factory=Schedule)

    @property
    def dimensions(self) -> int:
        return len(self.variables)

    def define(self, value: Expr) -> "Func":
        self.value = value
        return self

    def update(self, rdom: RDom, index_exprs: Sequence[Expr], expr: Expr) -> "Func":
        self.reduction = (rdom, list(index_exprs), expr)
        return self

    def tile(self, tile_x: int, tile_y: int) -> "Func":
        self.schedule.tile_x = tile_x
        self.schedule.tile_y = tile_y
        return self

    def vectorize(self, enabled: bool = True) -> "Func":
        self.schedule.vectorize = enabled
        return self

    def parallel(self, enabled: bool = True) -> "Func":
        self.schedule.parallel = enabled
        return self

    def __str__(self) -> str:
        vars_text = ", ".join(v.name for v in self.variables)
        return f"{self.name}({vars_text}) = {self.value}"
