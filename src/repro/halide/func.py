"""Mini-Halide front-end objects.

Expressions reuse :mod:`repro.ir`; a :class:`Func` maps pure variables to one
expression (possibly wrapped in selects for predicated kernels) and may carry
a reduction update (histogram-style kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..ir import (
    BinOp,
    BufferAccess,
    Cast,
    DType,
    Expr,
    Op,
    UINT8,
    Var as IRVar,
)
from .parallel import parallel_enabled, pool_size


def _strip_self_reference(update: Expr, name: str):
    """For updates of the form ``f(idx) + k`` return ``k`` (the increment)."""
    node = update
    while isinstance(node, Cast):
        node = node.a
    if isinstance(node, BinOp) and node.op == Op.ADD:
        for self_side, other in ((node.a, node.b), (node.b, node.a)):
            inner = self_side
            while isinstance(inner, Cast):
                inner = inner.a
            if isinstance(inner, BufferAccess) and inner.buffer == name:
                return other
    return None


class Var(IRVar):
    """A pure loop variable (alias of the IR variable node)."""


@dataclass
class ImageParam:
    """An input buffer of the lifted kernel."""

    name: str
    dimensions: int
    dtype: DType = UINT8

    def __str__(self) -> str:
        return f"ImageParam({self.name}, {self.dtype.halide_name()}, {self.dimensions})"


@dataclass
class RDom:
    """A reduction domain over another buffer's extents."""

    name: str
    source: str                      # buffer whose bounds define the domain
    dimensions: int

    def vars(self) -> list[IRVar]:
        return [IRVar(f"r_{d}") for d in range(self.dimensions)]


#: Default RDom strip height (source rows per partial accumulator) for an
#: associative-parallel reduction whose schedule carries no ``tile_y``.
DEFAULT_REDUCTION_STRIP = 64

#: SIMD lanes the native backend strip-mines a vectorized inner loop by when
#: the schedule says ``vectorize=True`` without an explicit width.
DEFAULT_VECTORIZE_WIDTH = 8


def vectorize_width(schedule: "Schedule") -> int:
    """The SIMD split width a schedule's ``vectorize`` flag denotes.

    ``True`` means "vectorize at the default width"; an explicit integer
    ``>= 2`` is a width the autotuner sampled; ``False``/``0``/``1`` mean no
    inner-loop split (0).  Only the native backend consumes this — the NumPy
    engines are whole-region vectorized regardless (see
    :meth:`Schedule.describe`).
    """
    flag = schedule.vectorize
    if flag is True:
        return DEFAULT_VECTORIZE_WIDTH
    if isinstance(flag, int) and not isinstance(flag, bool) and flag >= 2:
        return int(flag)
    return 0


@dataclass
class Schedule:
    """A (simulated) Halide schedule.

    The NumPy realizer always vectorizes; tiling controls the block size used
    when evaluating large outputs (affecting locality), ``parallel`` asks the
    compiled engine to execute independent tiles across the shared worker
    pool (see :mod:`repro.halide.parallel`), and ``fuse_producers`` controls
    whether producer functions are inlined or materialized.

    ``compute`` places the Func in a pipeline (its *materialization level*,
    consumed by :mod:`repro.halide.lower`):

    * ``"default"`` — legacy stage-by-stage realization (full-frame, padded
      inputs); eligible for pointwise ``compute_inline`` fusion via
      :meth:`FuncPipeline.fused`.
    * ``"root"`` — explicitly materialized full-frame through the lowered
      loop-nest IR (:func:`Func.compute_root`).
    * ``"at"`` — materialized into a tile-plus-ghost-zone scratch buffer
      once per iteration of the consumer loop named by ``compute_at``
      (:func:`Func.compute_at`); ``compute_at`` is ``(consumer_name,
      var_name)``.

    ``parallel`` is only honoured for tiled pure functions of rank >= 2 — an
    untiled schedule has no independent work units to distribute, so it falls
    back to serial execution (and :func:`describe` says so).  For the full
    per-Func answer (reductions, rank) use :meth:`Func.execution_mode`.
    """

    tile_x: int = 0
    tile_y: int = 0
    #: ``True`` = vectorize at the default width, an int >= 2 = explicit SIMD
    #: width (only the native backend splits the inner loop; see
    #: :func:`vectorize_width`), ``False`` = off.
    vectorize: "bool | int" = True
    parallel: bool = False
    fuse_producers: bool = True
    compute: str = "default"
    compute_at: Optional[tuple[str, str]] = None

    def describe(self, backend: Optional[str] = None) -> str:
        """A Halide-style summary of the schedule, honest about untiled
        parallelism.

        A parallel request the schedule itself can see is impossible (no
        tiles to distribute) is reported as ``parallel(serial:untiled)``.
        Obstacles only the Func knows — reductions, rank < 2 — and the
        environment (pool size, kill switch) are outside a Schedule's view;
        consult :meth:`Func.execution_mode` /
        :meth:`Func.parallel_unsupported_reason` for the full answer.
        Shape-dependent outcomes of ``compute_at`` — the inferred bounds and
        scratch-buffer sizes — live one level up, in
        :meth:`repro.halide.lower.LoweredPipeline.describe`.

        With ``backend`` the vectorize flag reports per-backend truth: only
        the native backend actually splits the inner loop by the SIMD width,
        so other engines report the directive as ignored (they are
        whole-region vectorized by NumPy regardless of the flag).
        """
        parts = []
        if self.compute == "root":
            parts.append("compute_root")
        elif self.compute == "at" and self.compute_at is not None:
            parts.append(f"compute_at({self.compute_at[0]},{self.compute_at[1]})")
        if self.tile_x and self.tile_y:
            parts.append(f"tile({self.tile_x},{self.tile_y})")
        if self.vectorize:
            width = vectorize_width(self)
            if backend == "native":
                parts.append(f"vectorize({width})")
            elif backend is not None:
                parts.append(f"vectorize(ignored:{backend})")
            elif self.vectorize is True:
                parts.append("vectorize")
            else:
                parts.append(f"vectorize({width})")
        if self.parallel:
            if self.tile_x and self.tile_y:
                parts.append("parallel")
            else:
                parts.append("parallel(serial:untiled)")
        if self.fuse_producers and self.compute == "default":
            parts.append("compute_inline")
        return ".".join(parts) if parts else "root"


@dataclass
class Func:
    """A lifted Halide function.

    A Func owns its variables (innermost first, matching the lifted buffer
    indexing), a pure expression and/or a reduction update, the input
    :class:`ImageParam` descriptors recovered by the lifter, and a
    :class:`Schedule`.  Realize one with :func:`repro.halide.realize`, or
    serve many requests through :class:`repro.halide.PipelineServer`.
    """

    name: str
    variables: list[IRVar]
    value: Optional[Expr] = None
    dtype: DType = UINT8
    #: Reduction update: (rdom, index_expr_per_dim, update_expr).
    reduction: Optional[tuple[RDom, list[Expr], Expr]] = None
    inputs: list[ImageParam] = field(default_factory=list)
    schedule: Schedule = field(default_factory=Schedule)

    @property
    def dimensions(self) -> int:
        return len(self.variables)

    def define(self, value: Expr) -> "Func":
        """Set the pure definition (the value computed at every point)."""
        self.value = value
        return self

    def update(self, rdom: RDom, index_exprs: Sequence[Expr], expr: Expr) -> "Func":
        """Attach a reduction update over ``rdom`` (histogram-style)."""
        self.reduction = (rdom, list(index_exprs), expr)
        return self

    def tile(self, tile_x: int, tile_y: int) -> "Func":
        """Evaluate in ``tile_x`` x ``tile_y`` blocks (locality + parallel units)."""
        self.schedule.tile_x = tile_x
        self.schedule.tile_y = tile_y
        return self

    def vectorize(self, enabled: "bool | int" = True) -> "Func":
        """Request an inner-loop SIMD split on the native backend.

        ``True`` uses :data:`DEFAULT_VECTORIZE_WIDTH`; an explicit integer
        ``>= 2`` sets the width (the autotuner samples these).  The NumPy
        engines are whole-region vectorized either way and report the
        directive as ignored (``Schedule.describe(backend=...)``).
        """
        self.schedule.vectorize = enabled
        return self

    def parallel(self, enabled: bool = True) -> "Func":
        """Request tile-parallel execution on the shared worker pool.

        Effective together with :meth:`tile` on a pure rank>=2 function, and
        on associative reductions (RDom strips accumulate into private
        partial accumulators, merged serially); otherwise the compiled
        engine warns once and runs serially (see
        :meth:`parallel_unsupported_reason`).
        """
        self.schedule.parallel = enabled
        return self

    def compute_root(self) -> "Func":
        """Materialize this Func full-frame through the lowered loop nest.

        In a :class:`~repro.halide.pipeline.FuncPipeline`, an explicit
        ``compute_root`` stage is realized via the lowered ``Stmt`` IR
        (:mod:`repro.halide.lower`): one full-frame buffer, borders handled
        by clamped ghost reads instead of input padding.  Bit-identical to
        the legacy padded stage-by-stage path.
        """
        self.schedule.compute = "root"
        self.schedule.compute_at = None
        return self

    def compute_at(self, consumer: "Func | str", var: "IRVar | str") -> "Func":
        """Materialize this Func per-iteration of ``consumer``'s loop ``var``.

        Instead of a full-frame intermediate, the lowering allocates a
        scratch buffer of tile-plus-ghost-zone size and fills it once per
        consumer tile (or row strip, for an untiled consumer) — Halide's
        locality scheduling.  ``var`` must be one of the consumer's pure
        variables; which loop it anchors to is resolved at lowering time
        against the consumer's own schedule (tiled consumers anchor at the
        tile loops).
        """
        consumer_name = consumer if isinstance(consumer, str) else consumer.name
        var_name = var if isinstance(var, str) else var.name
        self.schedule.compute = "at"
        self.schedule.compute_at = (consumer_name, var_name)
        return self

    def reduction_increment(self) -> Optional[Expr]:
        """The pure increment ``k`` of an update ``f(idx) = f(idx) + k``.

        None when the Func has no reduction, or when its update is not an
        accumulation of a self-independent increment (scatter-assign
        updates, or increments/indices that read the accumulator itself).
        """
        if self.reduction is None:
            return None
        rdom, index_exprs, update = self.reduction
        increment = _strip_self_reference(update, self.name)
        if increment is None:
            return None
        for expr in (increment, *index_exprs):
            for node in expr.walk():
                if isinstance(node, BufferAccess) and node.buffer == self.name:
                    return None            # reads the running accumulator
        return increment

    def reduction_is_associative(self) -> bool:
        """Can this reduction be split into parallel partial accumulators?

        True for modular-integer accumulations ``f(idx) = f(idx) + k`` whose
        increment and index expressions never read the accumulator: wrapping
        integer addition is associative and commutative, so disjoint RDom
        sweeps into private partials merged serially are bit-identical to
        the one serial whole-domain sweep.  Float accumulations (rounding
        depends on summation order) and scatter-assign updates (last write
        wins) are not.
        """
        if self.reduction is None or not self.dtype.is_integer:
            return False
        return self.reduction_increment() is not None

    def reduction_strip_rows(self) -> int:
        """Source rows per partial accumulator for a parallel reduction.

        The reduction analogue of a tile size: ``tile_y`` splits the RDom's
        outermost (NumPy) axis into strips, each accumulated into a private
        partial; untiled schedules use :data:`DEFAULT_REDUCTION_STRIP`.
        Autotuning samples this together with the parallel flag.
        """
        return self.schedule.tile_y if self.schedule.tile_y > 0 \
            else DEFAULT_REDUCTION_STRIP

    def parallel_unsupported_reason(self) -> Optional[str]:
        """Why ``schedule.parallel`` cannot be honoured, or None if it can.

        Parallel execution distributes the tiles of a pure, rank>=2 tiled
        loop nest — or, for an associative reduction, disjoint RDom strips
        accumulated into private partials and merged serially.  Anything
        else has no independent decomposition to fan out.
        """
        if self.reduction is not None:
            if not self.reduction_is_associative():
                return ("the reduction update is not an associative integer "
                        "accumulation (no parallel partial accumulators)")
            return None
        if self.value is None:
            return "the function has no pure definition to tile"
        if len(self.variables) < 2:
            return "parallel tiling needs at least two loop dimensions"
        if self.schedule.tile_x <= 0 or self.schedule.tile_y <= 0:
            return "the schedule is untiled (call .tile(tx, ty) first)"
        return None

    def execution_mode(self, backend: Optional[str] = None) -> str:
        """The real execution mode of the engines for this Func.

        ``"parallel"`` when tiles will be offered to the worker pool,
        ``"serial"`` otherwise — not requested, requested but unsupported, or
        impossible in this environment (single-worker pool, or the
        ``REPRO_PARALLEL=0`` kill switch).  Per-call outcomes — the cost
        heuristic can still keep a small realization serial — are tallied in
        :data:`repro.halide.parallel.execution_stats`.

        With a ``backend`` name the mode also reports the vectorize
        directive honestly: only the native backend emits the SIMD split,
        so ``execution_mode("native")`` appends ``+vectorize(W)`` while the
        NumPy engines append ``+vectorize(ignored)``.
        """
        mode = "serial"
        if self.schedule.parallel and self.parallel_unsupported_reason() is None \
                and parallel_enabled() and pool_size() >= 2:
            mode = "parallel"
        if backend is not None and self.schedule.vectorize:
            width = vectorize_width(self.schedule)
            if backend == "native":
                mode += f"+vectorize({width})"
            else:
                mode += "+vectorize(ignored)"
        return mode

    def __str__(self) -> str:
        vars_text = ", ".join(v.name for v in self.variables)
        return f"{self.name}({vars_text}) = {self.value}"
