"""NumPy realization of mini-Halide functions.

Evaluates a :class:`~repro.halide.func.Func` over its output domain using
vectorized NumPy, honouring the tiling schedule.  Integer arithmetic is
performed in int64 and wrapped at casts, which reproduces the 32-bit x86
arithmetic of the original kernels bit-for-bit for the value ranges stencils
produce; floating point follows IEEE double like the x87/SSE originals.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np

from ..ir import (
    BinOp,
    BufferAccess,
    Call,
    Cast,
    Const,
    Expr,
    Op,
    Param,
    Select,
    UnOp,
    Var,
)
# _strip_self_reference lives in func.py (next to the associativity test it
# underpins) and stays importable from here for the compiled backend.
from .func import Func, _strip_self_reference  # noqa: F401


class RealizationError(Exception):
    """Raised when an expression cannot be evaluated."""


def _wrap_cast(values: np.ndarray, dtype) -> np.ndarray:
    if dtype.is_float:
        return np.asarray(values).astype(np.float64 if dtype.bits == 64 else np.float32,
                                         copy=False)
    mask = (1 << dtype.bits) - 1
    wrapped = np.asarray(values).astype(np.int64, copy=False) & mask
    if dtype.is_signed:
        sign_bit = 1 << (dtype.bits - 1)
        wrapped = np.where(wrapped >= sign_bit, wrapped - (1 << dtype.bits), wrapped)
    return wrapped


def _evaluate(expr: Expr, env: Mapping[str, np.ndarray],
              buffers: Mapping[str, np.ndarray], params: Mapping[str, float]) -> np.ndarray:
    if isinstance(expr, Const):
        return np.asarray(expr.value)
    if isinstance(expr, Var):
        if expr.name not in env:
            raise RealizationError(f"unbound variable {expr.name}")
        return env[expr.name]
    if isinstance(expr, Param):
        if expr.name in params:
            return np.asarray(params[expr.name])
        return np.asarray(expr.value)
    if isinstance(expr, BufferAccess):
        array = buffers.get(expr.buffer)
        if array is None:
            raise RealizationError(f"no binding for buffer {expr.buffer}")
        sliced = _sliced_access(expr, array, env)
        if sliced is not None:
            return sliced.astype(np.int64) if not expr.dtype.is_float \
                else sliced.astype(np.float64)
        indices = [np.asarray(_evaluate(i, env, buffers, params)).astype(np.int64)
                   for i in expr.indices]
        # Buffer indices are innermost-first; numpy arrays are outermost-first.
        np_index = tuple(reversed([np.broadcast_arrays(*indices)[k] if len(indices) > 1 else indices[k]
                                   for k in range(len(indices))]))
        return array[np_index].astype(np.int64) if not expr.dtype.is_float \
            else array[np_index].astype(np.float64)
    if isinstance(expr, BinOp):
        a = _evaluate(expr.a, env, buffers, params)
        b = _evaluate(expr.b, env, buffers, params)
        return _apply_binop(expr.op, a, b, expr.dtype.is_float)
    if isinstance(expr, UnOp):
        a = _evaluate(expr.a, env, buffers, params)
        if expr.op == Op.NEG:
            return -a
        if expr.op == Op.NOT:
            return ~np.asarray(a).astype(np.int64)
        if expr.op == Op.ABS:
            return np.abs(a)
        raise RealizationError(f"unknown unary operator {expr.op}")
    if isinstance(expr, Cast):
        return _wrap_cast(np.asarray(_evaluate(expr.a, env, buffers, params)), expr.dtype)
    if isinstance(expr, Select):
        cond = _evaluate(expr.cond, env, buffers, params)
        a = _evaluate(expr.if_true, env, buffers, params)
        b = _evaluate(expr.if_false, env, buffers, params)
        return np.where(cond != 0, a, b)
    if isinstance(expr, Call):
        args = [_evaluate(a, env, buffers, params) for a in expr.args]
        if expr.func == "round":
            return np.rint(args[0]).astype(np.int64)
        if expr.func in ("sqrt", "floor", "ceil"):
            return getattr(np, expr.func)(args[0])
        raise RealizationError(f"unknown call {expr.func}")
    raise RealizationError(f"cannot evaluate {type(expr).__name__}")


def _shift_of(index: Expr):
    """Decompose an index into (var_name, offset) for pure shifted accesses."""
    if isinstance(index, Var):
        return index.name, 0
    if isinstance(index, Const):
        return None, int(index.value)
    if isinstance(index, BinOp) and index.op == Op.ADD:
        a, b = index.a, index.b
        if isinstance(a, Var) and isinstance(b, Const):
            return a.name, int(b.value)
        if isinstance(b, Var) and isinstance(a, Const):
            return b.name, int(a.value)
    return "complex", 0


def _sliced_access(expr: BufferAccess, array: np.ndarray, env: Mapping) -> np.ndarray | None:
    """Fast path: shifted-window accesses become array slices.

    This is the mini-Halide equivalent of the real compiler generating dense
    vector loads for ``input(x+1, y)`` style accesses instead of gathers; it
    is what makes the realized kernels competitive in the benchmarks.  Applies
    when the access has the same rank as the output and index position ``p``
    is ``x_p + c`` — i.e. a shifted window aligned with the iteration space.
    """
    var_position = env.get("__var_position__")
    out_shape = env.get("__out_shape__")
    if var_position is None or out_shape is None:
        return None
    rank = len(out_shape)
    if array.ndim != len(expr.indices) or array.ndim != rank:
        return None
    slices: list = [None] * rank
    for position, idx_expr in enumerate(expr.indices):
        name, offset = _shift_of(idx_expr)
        axis = rank - 1 - position
        if name == "complex" or name is None:
            return None
        if var_position.get(name) != position:
            return None
        extent = out_shape[axis]
        if offset < 0 or offset + extent > array.shape[axis]:
            return None
        slices[axis] = slice(offset, offset + extent)
    return array[tuple(slices)]


def _as_int(value):
    array = np.asarray(value)
    return array if array.dtype == np.int64 else array.astype(np.int64, copy=False)


def _trunc_divide(a, b):
    """Integer division truncating toward zero, matching x86 ``idiv``.

    Python's ``//`` floors, which differs for exactly one negative operand
    (``-7 // 2 == -4`` but ``idiv`` gives ``-3``); lifted kernels must realize
    the division the traced binary performed.

    A zero divisor raises :class:`RealizationError` — x86 ``idiv`` faults
    (``#DE``), so the one semantics both engines share is a hard error, not
    NumPy's warning-plus-garbage.  (Compiled kernels call this same helper,
    so the check cannot diverge between engines.)
    """
    b = np.asarray(b)
    if b.size and not np.all(b):
        raise RealizationError(
            "integer division by zero (x86 idiv raises #DE)")
    quotient = np.floor_divide(a, b)
    remainder = a - quotient * b
    return quotient + ((remainder != 0) & ((a < 0) != (b < 0)))


def _trunc_remainder(a, b):
    """Integer remainder with the dividend's sign, matching x86 ``idiv``.

    Shares :func:`_trunc_divide`'s zero-divisor semantics: a hard
    :class:`RealizationError` in both engines.
    """
    return a - _trunc_divide(a, b) * b


def _apply_binop(op: str, a, b, is_float: bool):
    if op == Op.ADD:
        return a + b
    if op == Op.SUB:
        return a - b
    if op == Op.MUL:
        return a * b
    if op == Op.DIV:
        return a / b if is_float else _trunc_divide(_as_int(a), _as_int(b))
    if op == Op.MOD:
        return _trunc_remainder(_as_int(a), _as_int(b))
    if op in (Op.SHR, Op.SAR):
        return _as_int(a) >> _as_int(b)
    if op == Op.SHL:
        return _as_int(a) << _as_int(b)
    if op == Op.AND:
        return _as_int(a) & _as_int(b)
    if op == Op.OR:
        return _as_int(a) | _as_int(b)
    if op == Op.XOR:
        return _as_int(a) ^ _as_int(b)
    if op == Op.MIN:
        return np.minimum(a, b)
    if op == Op.MAX:
        return np.maximum(a, b)
    if op == Op.LT:
        return (a < b).astype(np.int64)
    if op == Op.LE:
        return (a <= b).astype(np.int64)
    if op == Op.GT:
        return (a > b).astype(np.int64)
    if op == Op.GE:
        return (a >= b).astype(np.int64)
    if op == Op.EQ:
        return (a == b).astype(np.int64)
    if op == Op.NE:
        return (a != b).astype(np.int64)
    raise RealizationError(f"unknown operator {op}")


#: Engines: "interp" walks the expression tree with NumPy ops (the oracle);
#: "compiled" lowers the Func to a fused, CSE'd kernel once and caches it;
#: "native" compiles the whole lowered loop nest to C (degrading to
#: "compiled" when no C toolchain is available).
ENGINES = ("interp", "compiled", "native")

DEFAULT_ENGINE = os.environ.get("REPRO_REALIZE_ENGINE", "compiled")


def get_default_engine() -> str:
    """The current process-wide default engine (live, not an import snapshot)."""
    return DEFAULT_ENGINE


def set_default_engine(engine: str) -> str:
    """Set the process-wide default engine; returns the previous one."""
    global DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    previous = DEFAULT_ENGINE
    DEFAULT_ENGINE = engine
    return previous


def realize(func: Func, shape: tuple[int, ...], buffers: Mapping[str, np.ndarray],
            params: Mapping[str, float] | None = None,
            engine: str | None = None) -> np.ndarray:
    """Realize a function over an output domain.

    ``shape`` gives the extent of each pure variable (innermost first, matching
    the order of ``func.variables``); ``buffers`` binds input buffer names to
    NumPy arrays indexed outermost-first.  ``engine`` selects the interpreter
    ("interp") or the cached compiled-kernel backend ("compiled", the
    default); both are bit-identical.  The process-wide default engine comes
    from ``REPRO_REALIZE_ENGINE`` (see :func:`set_default_engine`).

    Under the compiled engine a tiled schedule marked ``parallel`` executes
    its tiles across the shared worker pool (``REPRO_NUM_THREADS`` sizes it,
    ``REPRO_PARALLEL=0`` disables it) with bit-identical results; the
    interpreter ignores schedules entirely.  For many inputs through one
    function, see :func:`repro.halide.serve.realize_batch`.
    """
    if func.value is None and func.reduction is None:
        raise RealizationError(f"function {func.name} has no definition")
    choice = engine if engine is not None else DEFAULT_ENGINE
    from .backends import get_backend

    return get_backend(choice).realize_func(func, shape, buffers, params or {})


def realize_interp(func: Func, shape: tuple[int, ...], buffers: Mapping[str, np.ndarray],
                   params: Mapping[str, float] | None = None) -> np.ndarray:
    """The tree-walking NumPy realizer (the compiled engine's oracle)."""
    params = params or {}
    if func.value is None and func.reduction is None:
        raise RealizationError(f"function {func.name} has no definition")

    np_shape = tuple(reversed(shape))
    if func.value is not None:
        grids = np.meshgrid(*[np.arange(extent) for extent in np_shape], indexing="ij") \
            if np_shape else []
        env = {}
        for position, var in enumerate(func.variables):
            # variables are innermost-first; meshgrid axes are outermost-first.
            env[var.name] = grids[len(np_shape) - 1 - position] if grids else np.asarray(0)
        env["__var_position__"] = {var.name: position
                                   for position, var in enumerate(func.variables)}
        env["__out_shape__"] = np_shape
        values = _evaluate(func.value, env, buffers, params)
        output = np.broadcast_to(values, np_shape).copy()
        output = _wrap_cast(output, func.dtype).astype(func.dtype.to_numpy())
    else:
        output = np.zeros(np_shape, dtype=func.dtype.to_numpy())

    if func.reduction is not None:
        rdom = func.reduction[0]
        source = buffers.get(rdom.source)
        if source is None:
            raise RealizationError(f"no binding for reduction source {rdom.source}")
        reduce_region_interp(func, output, (0,) * source.ndim, source.shape,
                             buffers, params)
    return output


def reduce_region_interp(func: Func, out: np.ndarray,
                         origin: tuple[int, ...], extent: tuple[int, ...],
                         buffers: Mapping[str, np.ndarray],
                         params: Mapping[str, float] | None = None) -> np.ndarray:
    """Apply a Func's reduction update over one RDom sub-region, in place.

    ``origin``/``extent`` restrict the sweep to a rectangle of the reduction
    source (NumPy axis order, global source coordinates); the full-domain
    call is exactly :func:`realize_interp`'s reduction phase.  Associative
    updates (``f(idx) + k``) accumulate with ``np.add.at`` so disjoint
    sub-region sweeps sum to the whole-domain result; non-associative
    updates scatter-assign and must only ever be swept whole-domain.  This
    is the interpreter backend's primitive for lowered
    :class:`~repro.ir.stmt.ReduceLoop` nodes and the fallback the compiled
    backend uses when its reduction body cannot run.
    """
    params = params or {}
    if func.reduction is None:
        raise RealizationError(f"function {func.name} has no reduction update")
    rdom, index_exprs, update = func.reduction
    grids = np.meshgrid(*[np.arange(int(o), int(o) + int(e))
                          for o, e in zip(origin, extent)], indexing="ij")
    env = {}
    for position, var in enumerate(rdom.vars()):
        env[var.name] = grids[len(extent) - 1 - position]
    buffers_with_output = dict(buffers)
    buffers_with_output[func.name] = out
    indices = [np.asarray(_evaluate(e, env, buffers_with_output, params)).astype(np.int64)
               for e in index_exprs]
    np_index = tuple(reversed(indices))
    # Evaluate the update right-hand side with the *current* output, then
    # apply increments with np.add.at so repeated bins accumulate.
    update_wo_self = _strip_self_reference(update, func.name)
    if update_wo_self is not None:
        increment = _evaluate(update_wo_self, env, buffers_with_output, params)
        np.add.at(out, np_index, np.broadcast_to(increment, indices[0].shape)
                  .astype(out.dtype))
    else:
        values = _evaluate(update, env, buffers_with_output, params)
        out[np_index] = _wrap_cast(values, func.dtype).astype(func.dtype.to_numpy())
    return out


def realize_region_interp(func: Func, origin: tuple[int, ...],
                          extent: tuple[int, ...],
                          buffers: Mapping[str, np.ndarray],
                          params: Mapping[str, float] | None = None) -> np.ndarray:
    """Evaluate a pure Func over one region via the tree-walking oracle.

    ``origin``/``extent`` are in NumPy (outermost-first) axis order; the
    variable grids start at ``origin``, so expressions see the same
    coordinates a full-frame realization would.  This is the interpreter
    backend's primitive for executing lowered ``Store`` nodes, and the
    fallback the compiled backend uses when a store kernel cannot be
    lowered.  The shifted-window fast path is deliberately not engaged —
    values are identical either way, and the oracle stays obviously correct.
    """
    if func.value is None:
        raise RealizationError(f"function {func.name} has no pure definition")
    params = params or {}
    np_shape = tuple(int(e) for e in extent)
    grids = np.meshgrid(*[np.arange(int(o), int(o) + int(e))
                          for o, e in zip(origin, extent)], indexing="ij") \
        if np_shape else []
    env = {}
    for position, var in enumerate(func.variables):
        env[var.name] = grids[len(np_shape) - 1 - position] if grids \
            else np.asarray(0)
    values = _evaluate(func.value, env, buffers, params)
    output = np.broadcast_to(values, np_shape).copy()
    return _wrap_cast(output, func.dtype).astype(func.dtype.to_numpy())


