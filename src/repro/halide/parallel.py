"""Multicore tile execution for compiled kernels.

The compiled backend (:mod:`repro.halide.compile`) decomposes a tiled pure
Func into independent output tiles; this module runs those tiles across a
process-wide :class:`~concurrent.futures.ThreadPoolExecutor`.  NumPy ufuncs
release the GIL for the array work that dominates each tile, so threads scale
on multicore hardware without the pickling restrictions a process pool would
impose on dynamically ``compile()``-d kernel bodies (the generated ``_body``
closures are not picklable, which is why the pool is thread-based).

Whether a given realization actually fans out is a per-call decision made by
:func:`choose_tile_executor`, a cost heuristic over the output extents and the
pool size — tiny outputs stay serial because submit/join overhead would exceed
the tile work.  Workers never re-submit to the pool (nested realizations —
e.g. a kernel realized inside a :class:`~repro.halide.serve.PipelineServer`
request — run their tiles serially), so the shared pool cannot deadlock on
itself.

Every realization records its real execution mode in :data:`execution_stats`;
schedules that request ``parallel`` but cannot be honoured (untiled pure
funcs, non-associative reductions, rank < 2) emit a
:class:`ParallelFallbackWarning` once per kernel signature at compile time.
Associative reductions parallelize through :func:`run_reduction_strips` —
private partial accumulators per RDom strip, merged serially.
"""

from __future__ import annotations

import os
import sys
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..reliability.faults import fault_fires, fault_point
from ..reliability.policy import TransientExecutionError

#: Thread-name prefix identifying the shared pool's workers; used to detect
#: (and serialize) nested parallelism instead of deadlocking the pool.
_WORKER_PREFIX = "repro-halide-worker"

#: Below this many total output elements a tiled realization stays serial:
#: submit/join overhead beats the per-tile NumPy work.
MIN_PARALLEL_ELEMS = 1 << 16

_pool: ThreadPoolExecutor | None = None
_pool_workers: int | None = None
_pool_lock = threading.Lock()

_stats_lock = threading.Lock()

#: Real execution modes observed at run time (not what schedules *request*):
#: ``parallel`` / ``serial`` count whole-kernel realizations routed through
#: the tiled executor; ``tiles_parallel`` / ``tiles_serial`` count the tiles
#: those realizations executed.  ``serial`` includes heuristic rejections and
#: nested (in-worker) realizations.
execution_stats = {"parallel": 0, "serial": 0,
                   "tiles_parallel": 0, "tiles_serial": 0,
                   "tile_retries": 0, "pool_revived": 0}


class ParallelFallbackWarning(UserWarning):
    """A schedule requested ``parallel`` but the kernel will run serially."""


def reset_execution_stats() -> None:
    """Zero :data:`execution_stats` (test/benchmark bookkeeping)."""
    with _stats_lock:
        for key in execution_stats:
            execution_stats[key] = 0


def default_workers() -> int:
    """Worker count for the shared pool.

    ``REPRO_NUM_THREADS`` overrides; otherwise every available core is used.
    """
    env = os.environ.get("REPRO_NUM_THREADS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def configure_pool(workers: int | None = None) -> int:
    """(Re)create the shared pool with ``workers`` threads; returns the size.

    Passing ``None`` re-reads :func:`default_workers`.  Any previously
    submitted work is drained before the old pool is discarded.
    """
    global _pool, _pool_workers
    if in_worker():
        # shutdown(wait=True) on the old pool would wait for the calling
        # worker's own task — a guaranteed deadlock.
        raise RuntimeError("configure_pool cannot be called from a pool worker")
    size = default_workers() if workers is None else max(1, int(workers))
    with _pool_lock:
        old = _pool
        _pool = ThreadPoolExecutor(max_workers=size,
                                   thread_name_prefix=_WORKER_PREFIX)
        _pool_workers = size
    if old is not None:
        old.shutdown(wait=True)
    return size


def get_pool() -> ThreadPoolExecutor:
    """The process-wide worker pool, created lazily on first use."""
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is None:
            _pool_workers = default_workers()
            _pool = ThreadPoolExecutor(max_workers=_pool_workers,
                                       thread_name_prefix=_WORKER_PREFIX)
        return _pool


def pool_size() -> int:
    """How many workers the shared pool has (without forcing creation)."""
    with _pool_lock:
        if _pool_workers is not None:
            return _pool_workers
    return default_workers()


def in_worker() -> bool:
    """True when the calling thread is one of the shared pool's workers."""
    return threading.current_thread().name.startswith(_WORKER_PREFIX)


def _revive_pool(dead: ThreadPoolExecutor) -> ThreadPoolExecutor:
    """The pool watchdog: replace a dead shared executor with a fresh one.

    Called when a submit failed because the *current* pool was shut down
    under us — an injected ``pool.die`` fault, or an external actor calling
    ``shutdown`` on the shared executor.  The swap happens under the pool
    lock and only if the dead pool is still installed, so concurrent
    revivers (and a racing :func:`configure_pool`) agree on one replacement.
    """
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is dead:
            _pool_workers = _pool_workers or default_workers()
            _pool = ThreadPoolExecutor(max_workers=_pool_workers,
                                       thread_name_prefix=_WORKER_PREFIX)
            with _stats_lock:
                execution_stats["pool_revived"] += 1
        return _pool


def submit_task(fn, *args):
    """Submit to the shared pool, surviving swaps *and* a dead executor.

    ``configure_pool`` swaps the pool and shuts the old one down; a caller
    that fetched the old pool just before the swap would get
    ``RuntimeError: cannot schedule new futures after shutdown`` — retrying
    re-fetches the replacement pool, which is never shut down by the swap.
    If the *current* pool itself is dead (shut down under us rather than
    swapped), the watchdog :func:`_revive_pool` installs a replacement —
    bounded to a few attempts so a submit that can never succeed
    (interpreter shutdown) raises instead of spinning.
    """
    pool = get_pool()
    for _ in range(4):
        try:
            return pool.submit(fn, *args)
        except RuntimeError:
            if sys.is_finalizing():
                raise
            current = get_pool()
            pool = current if current is not pool else _revive_pool(pool)
    return pool.submit(fn, *args)


def warm_pool() -> None:
    """Start every worker thread up front.

    ``ThreadPoolExecutor`` spawns threads lazily on ``submit``, so merely
    creating the pool starts none; timing-sensitive callers (the autotuner)
    call this so no measured realization pays thread startup.  The tasks
    block until all are submitted — an idle worker would otherwise absorb
    several of them and fewer threads would spawn.
    """
    count = pool_size()
    if count < 2:
        return
    release = threading.Event()
    futures = [submit_task(release.wait) for _ in range(count)]
    release.set()
    for future in futures:
        future.result()


def parallel_enabled() -> bool:
    """Global kill switch: ``REPRO_PARALLEL=0`` forces every kernel serial."""
    return os.environ.get("REPRO_PARALLEL", "1").strip().lower() \
        not in ("0", "false", "off")


def choose_tile_executor(shape, tile_count: int) -> bool:
    """The per-call cost heuristic: fan tiles out, or run them serially?

    Parallel wins only when there are at least two tiles to overlap, at least
    two workers to overlap them on, enough total work to amortize submit/join
    overhead (:data:`MIN_PARALLEL_ELEMS`), and the caller is not itself a pool
    worker (nested fan-out would deadlock a bounded pool).
    """
    if not parallel_enabled() or in_worker():
        return False
    if tile_count < 2 or pool_size() < 2:
        return False
    elems = 1
    for extent in shape:
        elems *= extent
    return elems >= MIN_PARALLEL_ELEMS


def record_execution(parallel: bool, tiles: int) -> None:
    """Tally one realization's real execution mode in :data:`execution_stats`.

    Used by :func:`run_tiles` and by the lowered-IR executor in
    :mod:`repro.halide.backends.base`, so both tile-execution paths report
    through the same counters.
    """
    with _stats_lock:
        execution_stats["parallel" if parallel else "serial"] += 1
        execution_stats["tiles_parallel" if parallel else "tiles_serial"] += tiles


def _maybe_kill_pool() -> None:
    """``pool.die`` fault site: shut the shared executor down under us.

    Models a worker pool dying mid-service; the next :func:`submit_task`
    must detect the dead executor and revive it (see :func:`_revive_pool`)
    rather than failing the realization.
    """
    if fault_fires("pool.die") is None:
        return
    with _pool_lock:
        pool = _pool
    if pool is not None:
        pool.shutdown(wait=False)


def run_tiles(body, out, tiles, buffers, params) -> None:
    """Execute ``body`` over every ``(origin, extent)`` tile into ``out``.

    Tiles cover disjoint regions of ``out``, so any execution order (and any
    interleaving across threads) produces bit-identical results; the parallel
    path is therefore exactly as trustworthy as the serial loop it replaces.
    Called from generated kernel code in :mod:`repro.halide.compile`.

    A tile whose execution fails transiently (an injected fault, an evicted
    worker) is re-executed once — serially, on the collecting thread — before
    the whole realization is allowed to fail; disjointness makes the re-run
    safe at any point.
    """
    _maybe_kill_pool()
    if choose_tile_executor(out.shape, len(tiles)):
        futures = [submit_task(_run_one_tile, body, out, origin, extent,
                               buffers, params)
                   for origin, extent in tiles]
        failed = []
        errors = []
        for future, tile in zip(futures, tiles):
            try:
                future.result()
            except TransientExecutionError as exc:
                failed.append(tile)
                errors.append(exc)
        for (origin, extent), error in zip(failed, errors):
            _retry_tile(body, out, origin, extent, buffers, params, error)
        record_execution(True, len(tiles))
        return
    for origin, extent in tiles:
        try:
            _run_one_tile(body, out, origin, extent, buffers, params)
        except TransientExecutionError as exc:
            _retry_tile(body, out, origin, extent, buffers, params, exc)
    record_execution(False, len(tiles))


def _retry_tile(body, out, origin, extent, buffers, params, error) -> None:
    """Serial one-shot re-execution of a transiently failed tile."""
    with _stats_lock:
        execution_stats["tile_retries"] += 1
    try:
        _run_one_tile(body, out, origin, extent, buffers, params)
    except TransientExecutionError as exc:
        raise exc from error


def _run_one_tile(body, out, origin, extent, buffers, params) -> None:
    fault_point("tile.execute")
    region = tuple(slice(o, o + e) for o, e in zip(origin, extent))
    out[region] = body(origin, extent, buffers, params)


def run_reduction_strips(reduce_fn, out, source_shape, strip, buffers,
                         params) -> None:
    """Two-phase associative reduction over the shared worker pool.

    Splits the RDom source's outermost axis into ``strip``-row strips, fans
    each strip's update sweep into a *private* partial accumulator
    (``np.add.at`` releases the GIL for the indexed work, so the strips
    scale on multicore hosts), then merges the partials into ``out`` with a
    deterministic serial loop.  Only valid for associative combine ops
    (modular integer accumulation) — for those, any strip split merges to a
    result bit-identical to the single serial whole-domain sweep, which is
    also the fallback when the cost heuristic keeps the call serial.
    ``reduce_fn(out, origin, extent, buffers, params)`` is the compiled
    ``_reduce`` body from :mod:`repro.halide.compile`.
    """
    axis0 = source_shape[0] if source_shape else 0
    rank = len(source_shape)
    count = -(-axis0 // strip) if strip > 0 and axis0 > 0 else 1
    if count < 2 or not choose_tile_executor(source_shape, count):
        reduce_fn(out, (0,) * rank, tuple(source_shape), buffers, params)
        record_execution(False, 1)
        return
    rest = tuple(source_shape[1:])
    _maybe_kill_pool()
    partials = np.zeros((count,) + out.shape, dtype=out.dtype)

    def one_strip(index: int) -> None:
        fault_point("tile.execute")
        lo = index * strip
        extent = (min(strip, axis0 - lo),) + rest
        reduce_fn(partials[index], (lo,) + (0,) * (rank - 1), extent,
                  buffers, params)

    futures = [submit_task(one_strip, index) for index in range(count)]
    failed: list[tuple[int, Exception]] = []
    for index, future in enumerate(futures):
        try:
            future.result()
        except TransientExecutionError as exc:
            failed.append((index, exc))
    for index, error in failed:
        # Accumulation is not idempotent, so the retry starts the strip's
        # *private* partial from zero again before re-sweeping it serially.
        with _stats_lock:
            execution_stats["tile_retries"] += 1
        partials[index] = 0
        try:
            one_strip(index)
        except TransientExecutionError as exc:
            raise exc from error
    for index in range(count):          # deterministic serial merge
        np.add(out, partials[index], out=out)
    record_execution(True, count)


_warned_signatures: set = set()


def reset_fallback_warnings() -> None:
    """Forget which kernels already warned (so tests can re-trigger them)."""
    with _stats_lock:
        _warned_signatures.clear()


def warn_serial_fallback(signature, reason: str) -> None:
    """Warn (once per kernel signature) that ``parallel`` is ignored."""
    with _stats_lock:
        if signature in _warned_signatures:
            return
        _warned_signatures.add(signature)
    warnings.warn(
        f"schedule requests parallel but the kernel will run serially: {reason}",
        ParallelFallbackWarning, stacklevel=3)
