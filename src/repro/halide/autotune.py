"""A small random-search autotuner standing in for OpenTuner (paper 6.2).

The search space is the schedule of the lifted function: tile sizes, whether
producers are fused, vectorization and — since the multicore executor — tile
parallelism.  Each candidate schedule is timed on the supplied workload and
the best is kept.  Schedules are part of the compiled backend's kernel cache
key, so re-evaluating a schedule (and the final run with the winner) pays
codegen only on first sight.

Parallel candidates are sampled *with* tiles (an untiled ``parallel`` request
falls back to serial and would measure nothing different), and the shared
worker pool is warmed before timing starts so no candidate pays thread
startup.  Reduction Funcs draw from their own space — RDom strip heights
(``tile_y``, the partial-accumulator granularity) crossed with parallel
on/off — so the two-phase reduction schedule is tuned like any other.  The timings therefore reflect the real execution mode of every
candidate, and ``Schedule.describe()`` on the winner says what actually ran.

:func:`autotune_pipeline` extends the search to multi-stage pipelines, where
the space also includes each producer's **compute level** — legacy inline
fusion, ``compute_root``, or ``compute_at`` anchored in its consumer's tile
loop — so the tuner explores the locality/recompute trade-off the lowered
loop-nest IR (:mod:`repro.halide.lower`) exposes.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace

from .func import Func, Schedule
from .parallel import parallel_enabled, pool_size, warm_pool
from .realize import realize

_TILE_CHOICES = (0, 8, 16, 32, 64, 128)
_NONZERO_TILES = tuple(t for t in _TILE_CHOICES if t)


@dataclass
class TuneResult:
    """Outcome of an autotuning session."""

    best_schedule: Schedule
    best_time: float
    evaluations: int
    history: list[tuple[Schedule, float]]


def _time_schedule(func: Func, shape, buffers, params, engine,
                   repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        # The first repeat may include one-time codegen for a fresh schedule;
        # taking the minimum keeps the steady-state cost.
        start = time.perf_counter()
        realize(func, shape, buffers, params, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def _sample_schedule(rng: random.Random) -> Schedule:
    """One random schedule; parallel candidates always carry tiles.

    ``parallel`` without tiles has no independent work units and would run
    (and time) identically to the serial schedule, wasting an evaluation.
    """
    tile_x = rng.choice(_TILE_CHOICES)
    tile_y = rng.choice(_TILE_CHOICES)
    # The draws are identical on every machine so a seed names one candidate
    # sequence; a single-worker pool just never honours the parallel draw.
    want_parallel = rng.random() < 0.5
    if want_parallel:
        tile_x = tile_x or rng.choice(_NONZERO_TILES)
        tile_y = tile_y or rng.choice(_NONZERO_TILES)
    return Schedule(tile_x=tile_x, tile_y=tile_y, vectorize=True,
                    parallel=(want_parallel and pool_size() > 1
                              and parallel_enabled()),
                    fuse_producers=rng.random() < 0.8)


def _sample_reduction_schedule(rng: random.Random) -> Schedule:
    """One random reduction schedule: RDom strip height x parallel on/off.

    ``tile_y`` is the strip height (source rows per partial accumulator —
    see :meth:`Func.reduction_strip_rows`); 0 draws the default.  Only
    associative reductions honour the parallel draw (the compiled engine
    falls back to the serial whole-domain sweep otherwise), so every
    candidate is safe to time.
    """
    strip = rng.choice(_TILE_CHOICES)
    want_parallel = rng.random() < 0.5
    return Schedule(tile_x=0, tile_y=strip, vectorize=True,
                    parallel=(want_parallel and pool_size() > 1
                              and parallel_enabled()))


def autotune(func: Func, shape, buffers, params=None, iterations: int = 10,
             seed: int = 0, engine: str | None = None) -> TuneResult:
    """Search schedules for ``func`` on the given workload.

    Every candidate is timed end to end through the selected engine, so tile
    sizes, fusion *and* parallel execution all show up in the measurements;
    the Func is left carrying the best schedule found.
    """
    rng = random.Random(seed)
    params = params or {}
    # Spin the worker threads up outside the timed region (a no-op for
    # single-worker pools).
    warm_pool()
    sampler = _sample_reduction_schedule if func.reduction is not None \
        else _sample_schedule
    history: list[tuple[Schedule, float]] = []
    best_schedule = Schedule()
    func.schedule = best_schedule
    best_time = _time_schedule(func, shape, buffers, params, engine)
    history.append((best_schedule, best_time))
    for _ in range(iterations):
        candidate = sampler(rng)
        func.schedule = candidate
        elapsed = _time_schedule(func, shape, buffers, params, engine)
        history.append((candidate, elapsed))
        if elapsed < best_time:
            best_time = elapsed
            best_schedule = candidate
    func.schedule = best_schedule
    return TuneResult(best_schedule=best_schedule, best_time=best_time,
                      evaluations=len(history), history=history)


# ---------------------------------------------------------------------------
# Pipeline-level tuning: tiles + parallelism + compute levels
# ---------------------------------------------------------------------------


@dataclass
class PipelineTuneResult:
    """Outcome of a pipeline autotuning session.

    ``best_schedules`` holds one :class:`Schedule` per stage (the winning
    compute levels included); ``history`` pairs each candidate's per-stage
    ``describe()`` strings with its measured time.
    """

    best_schedules: list[Schedule]
    best_time: float
    evaluations: int
    history: list[tuple[tuple[str, ...], float]]


def _sample_pipeline_schedules(pipeline, rng: random.Random) -> list[Schedule]:
    """One random per-stage schedule assignment.

    The output stage draws tiles/parallelism like :func:`_sample_schedule`;
    every producer draws a compute level: ``default`` (legacy stage-by-stage
    with pointwise inline fusion), ``root``, or — when the consumer can
    anchor it — ``at`` the consumer's second-innermost variable.
    """
    stages = pipeline.stages
    out_schedule = _sample_reduction_schedule(rng) \
        if stages[-1].func.reduction is not None else _sample_schedule(rng)
    out_schedule.compute = "root" if rng.random() < 0.7 else "default"
    schedules: list[Schedule] = []
    for index, stage in enumerate(stages[:-1]):
        consumer = stages[index + 1]
        if stage.func.reduction is not None:
            # Reduction producers never compute_at; sample their strip
            # height and parallel flag at root/default instead.
            schedule = _sample_reduction_schedule(rng)
            schedule.compute = "root" if rng.random() < 0.7 else "default"
            schedules.append(schedule)
            continue
        choice = rng.choice(("default", "root", "at"))
        schedule = Schedule()
        if choice == "at" and len(consumer.func.variables) >= 1:
            anchor_var = consumer.func.variables[
                1 if len(consumer.func.variables) >= 2 else 0]
            schedule.compute = "at"
            schedule.compute_at = (consumer.name, anchor_var.name)
        elif choice == "root":
            schedule.compute = "root"
        schedules.append(schedule)
    schedules.append(out_schedule)
    return schedules


def _apply_schedules(pipeline, schedules: list[Schedule]) -> None:
    for stage, schedule in zip(pipeline.stages, schedules):
        stage.func.schedule = schedule


def _time_pipeline(pipeline, image, params, engine, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        pipeline.realize(image, params, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def autotune_pipeline(pipeline, image, params=None, iterations: int = 10,
                      seed: int = 0, engine: str | None = None) -> PipelineTuneResult:
    """Search per-stage schedules (incl. compute levels) for a pipeline.

    Candidates that schedule a producer ``compute_at`` run through the
    lowered loop-nest IR with tile-plus-ghost-zone scratch buffers; the
    lowering demotes anchors it cannot bound (recorded in
    ``FuncPipeline.describe``), so every candidate is safe to time.  The
    pipeline is left carrying the best schedules found.
    """
    rng = random.Random(seed)
    params = params or {}
    warm_pool()
    baseline = [replace(stage.func.schedule) for stage in pipeline.stages]
    history: list[tuple[tuple[str, ...], float]] = []
    best_schedules = baseline
    best_time = _time_pipeline(pipeline, image, params, engine)
    history.append((tuple(s.describe() for s in baseline), best_time))
    for _ in range(iterations):
        candidate = _sample_pipeline_schedules(pipeline, rng)
        _apply_schedules(pipeline, candidate)
        elapsed = _time_pipeline(pipeline, image, params, engine)
        history.append((tuple(s.describe() for s in candidate), elapsed))
        if elapsed < best_time:
            best_time = elapsed
            best_schedules = candidate
    _apply_schedules(pipeline, best_schedules)
    return PipelineTuneResult(best_schedules=list(best_schedules),
                              best_time=best_time,
                              evaluations=len(history), history=history)
