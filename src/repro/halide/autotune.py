"""A small random-search autotuner standing in for OpenTuner (paper 6.2).

The search space is the schedule of the lifted function: tile sizes, whether
producers are fused, vectorization.  Each candidate schedule is timed on the
supplied workload and the best is kept.  Schedules are part of the compiled
backend's kernel cache key, so re-evaluating a schedule (and the final run
with the winner) pays codegen only on first sight.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from .func import Func, Schedule
from .realize import realize

_TILE_CHOICES = (0, 8, 16, 32, 64, 128)


@dataclass
class TuneResult:
    """Outcome of an autotuning session."""

    best_schedule: Schedule
    best_time: float
    evaluations: int
    history: list[tuple[Schedule, float]]


def _time_schedule(func: Func, shape, buffers, params, engine,
                   repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        # The first repeat may include one-time codegen for a fresh schedule;
        # taking the minimum keeps the steady-state cost.
        start = time.perf_counter()
        realize(func, shape, buffers, params, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def autotune(func: Func, shape, buffers, params=None, iterations: int = 10,
             seed: int = 0, engine: str | None = None) -> TuneResult:
    """Search schedules for ``func`` on the given workload."""
    rng = random.Random(seed)
    params = params or {}
    history: list[tuple[Schedule, float]] = []
    best_schedule = Schedule()
    func.schedule = best_schedule
    best_time = _time_schedule(func, shape, buffers, params, engine)
    history.append((best_schedule, best_time))
    for _ in range(iterations):
        candidate = Schedule(
            tile_x=rng.choice(_TILE_CHOICES),
            tile_y=rng.choice(_TILE_CHOICES),
            vectorize=True,
            parallel=rng.random() < 0.5,
            fuse_producers=rng.random() < 0.8,
        )
        func.schedule = candidate
        elapsed = _time_schedule(func, shape, buffers, params, engine)
        history.append((candidate, elapsed))
        if elapsed < best_time:
            best_time = elapsed
            best_schedule = candidate
    func.schedule = best_schedule
    return TuneResult(best_schedule=best_schedule, best_time=best_time,
                      evaluations=len(history), history=history)
