"""A small random-search autotuner standing in for OpenTuner (paper 6.2).

The search space is the schedule of the lifted function: tile sizes, whether
producers are fused, vectorization and — since the multicore executor — tile
parallelism.  Each candidate schedule is timed on the supplied workload and
the best is kept.  Schedules are part of the compiled backend's kernel cache
key, so re-evaluating a schedule (and the final run with the winner) pays
codegen only on first sight.

Parallel candidates are sampled *with* tiles (an untiled ``parallel`` request
falls back to serial and would measure nothing different), and the shared
worker pool is warmed before timing starts so no candidate pays thread
startup.  The timings therefore reflect the real execution mode of every
candidate, and ``Schedule.describe()`` on the winner says what actually ran.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from .func import Func, Schedule
from .parallel import parallel_enabled, pool_size, warm_pool
from .realize import realize

_TILE_CHOICES = (0, 8, 16, 32, 64, 128)
_NONZERO_TILES = tuple(t for t in _TILE_CHOICES if t)


@dataclass
class TuneResult:
    """Outcome of an autotuning session."""

    best_schedule: Schedule
    best_time: float
    evaluations: int
    history: list[tuple[Schedule, float]]


def _time_schedule(func: Func, shape, buffers, params, engine,
                   repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        # The first repeat may include one-time codegen for a fresh schedule;
        # taking the minimum keeps the steady-state cost.
        start = time.perf_counter()
        realize(func, shape, buffers, params, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def _sample_schedule(rng: random.Random) -> Schedule:
    """One random schedule; parallel candidates always carry tiles.

    ``parallel`` without tiles has no independent work units and would run
    (and time) identically to the serial schedule, wasting an evaluation.
    """
    tile_x = rng.choice(_TILE_CHOICES)
    tile_y = rng.choice(_TILE_CHOICES)
    # The draws are identical on every machine so a seed names one candidate
    # sequence; a single-worker pool just never honours the parallel draw.
    want_parallel = rng.random() < 0.5
    if want_parallel:
        tile_x = tile_x or rng.choice(_NONZERO_TILES)
        tile_y = tile_y or rng.choice(_NONZERO_TILES)
    return Schedule(tile_x=tile_x, tile_y=tile_y, vectorize=True,
                    parallel=(want_parallel and pool_size() > 1
                              and parallel_enabled()),
                    fuse_producers=rng.random() < 0.8)


def autotune(func: Func, shape, buffers, params=None, iterations: int = 10,
             seed: int = 0, engine: str | None = None) -> TuneResult:
    """Search schedules for ``func`` on the given workload.

    Every candidate is timed end to end through the selected engine, so tile
    sizes, fusion *and* parallel execution all show up in the measurements;
    the Func is left carrying the best schedule found.
    """
    rng = random.Random(seed)
    params = params or {}
    # Spin the worker threads up outside the timed region (a no-op for
    # single-worker pools).
    warm_pool()
    history: list[tuple[Schedule, float]] = []
    best_schedule = Schedule()
    func.schedule = best_schedule
    best_time = _time_schedule(func, shape, buffers, params, engine)
    history.append((best_schedule, best_time))
    for _ in range(iterations):
        candidate = _sample_schedule(rng)
        func.schedule = candidate
        elapsed = _time_schedule(func, shape, buffers, params, engine)
        history.append((candidate, elapsed))
        if elapsed < best_time:
            best_time = elapsed
            best_schedule = candidate
    func.schedule = best_schedule
    return TuneResult(best_schedule=best_schedule, best_time=best_time,
                      evaluations=len(history), history=history)
