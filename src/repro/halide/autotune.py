"""A cost-model-guided autotuner standing in for OpenTuner (paper 6.2).

The search space is the schedule of the lifted function: tile sizes, whether
producers are fused, vectorization and — since the multicore executor — tile
parallelism.  Candidates are no longer all wall-clock-timed: the sampled set
is ranked analytically by :mod:`repro.halide.costmodel` (features from the
lowering's own :class:`StageDecision` metadata) and only the baseline plus
the top-k survivors are timed live.  Schedules are part of the compiled
backend's kernel cache key, so re-evaluating a schedule (and the final run
with the winner) pays codegen only on first sight.

Parallel candidates are sampled against the *live* pool configuration: when
the pool cannot honour parallelism (single worker, or the kill switch), the
sampler neither sets ``parallel`` nor forces tiles onto the draw — forcing
tiles used to manufacture duplicate serial candidates that wasted timed
evaluations.  Candidate sequences therefore differ across pool widths; that
is fine because tuning results are persisted per machine fingerprint (CPU
count included) in the :class:`~repro.halide.tuningdb.TuningDatabase`.
Reduction Funcs draw from their own space — RDom strip heights (``tile_y``,
the partial-accumulator granularity) crossed with parallel on/off — so the
two-phase reduction schedule is tuned like any other.

When a ``store`` is supplied, each tuning session first consults the
persistent tuning database (zero evaluations on a hit for this machine +
workload) and persists its winner afterwards, which is what lets
:class:`~repro.halide.serve.PipelineServer` warm-start at zero timing cost.

:func:`autotune_pipeline` extends the search to multi-stage pipelines, where
the space also includes each producer's **compute level** — legacy inline
fusion, ``compute_root``, or ``compute_at`` anchored in its consumer's tile
loop — so the tuner explores the locality/recompute trade-off the lowered
loop-nest IR (:mod:`repro.halide.lower`) exposes.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace

from .costmodel import (CandidateScore, rank_func_candidates,
                        rank_pipeline_candidates)
from .func import Func, Schedule, vectorize_width
from .parallel import parallel_enabled, pool_size, warm_pool
from .realize import realize
from .tuningdb import (TuningDatabase, TuningRecord, func_workload,
                       pipeline_workload)

_TILE_CHOICES = (0, 8, 16, 32, 64, 128)
_NONZERO_TILES = tuple(t for t in _TILE_CHOICES if t)

#: Vectorize draws: ``True`` is the default width, integers are explicit
#: SIMD split widths (only the native backend distinguishes them; the NumPy
#: engines ignore the directive either way).
_VECTORIZE_CHOICES = (True, 4, 8, 16)

#: Default cap on live-timed *sampled* candidates per session (the baseline
#: schedule is always timed on top, so a session runs at most ``top_k + 1``
#: timed evaluations).
DEFAULT_TOP_K = 5

#: Observable tuning counters, in the style of
#: :data:`repro.halide.parallel.execution_stats`.  ``timed_evaluations``
#: increments once per wall-clock-timed candidate; the warm-start counters
#: are bumped by :mod:`repro.halide.tuningdb` so tests can assert that a
#: warm-started server performed zero timed evaluations.
tuner_stats = {
    "timed_evaluations": 0,
    "warm_start_hits": 0,
    "warm_start_misses": 0,
    "db_hits": 0,
    "db_stores": 0,
}


def reset_tuner_stats() -> None:
    for key in tuner_stats:
        tuner_stats[key] = 0


def _pool_allows_parallel() -> bool:
    """Can a ``parallel`` schedule be honoured under the live pool config?"""
    return pool_size() > 1 and parallel_enabled()


@dataclass
class TuneResult:
    """Outcome of an autotuning session.

    ``ranked`` is the cost model's ordering of the full candidate set
    (baseline included) before timing; ``source`` is ``"search"`` for a live
    session and ``"database"`` when a persisted record was reused with zero
    evaluations.
    """

    best_schedule: Schedule
    best_time: float
    evaluations: int
    history: list[tuple[Schedule, float]]
    ranked: list[CandidateScore] = field(default_factory=list)
    #: The deduped candidate set the ranking indexes into (baseline first).
    candidates: list[Schedule] = field(default_factory=list)
    source: str = "search"


def _time_schedule(func: Func, shape, buffers, params, engine,
                   repeats: int = 3) -> float:
    best = float("inf")
    tuner_stats["timed_evaluations"] += 1
    for _ in range(repeats):
        # The first repeat may include one-time codegen for a fresh schedule;
        # taking the minimum keeps the steady-state cost.
        start = time.perf_counter()
        realize(func, shape, buffers, params, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def _sample_schedule(rng: random.Random) -> Schedule:
    """One random schedule; parallel candidates always carry tiles.

    ``parallel`` without tiles has no independent work units and would run
    (and time) identically to the serial schedule, wasting an evaluation —
    so a parallel draw forces nonzero tiles.  The parallel draw itself is
    filtered against the live pool configuration: on a single-worker pool
    the draw stays serial *and* untiled-if-drawn-untiled, instead of
    minting tiled duplicates of serial candidates.
    """
    tile_x = rng.choice(_TILE_CHOICES)
    tile_y = rng.choice(_TILE_CHOICES)
    want_parallel = rng.random() < 0.5 and _pool_allows_parallel()
    if want_parallel:
        tile_x = tile_x or rng.choice(_NONZERO_TILES)
        tile_y = tile_y or rng.choice(_NONZERO_TILES)
    return Schedule(tile_x=tile_x, tile_y=tile_y,
                    vectorize=rng.choice(_VECTORIZE_CHOICES),
                    parallel=want_parallel,
                    fuse_producers=rng.random() < 0.8)


def _sample_reduction_schedule(rng: random.Random) -> Schedule:
    """One random reduction schedule: RDom strip height x parallel on/off.

    ``tile_y`` is the strip height (source rows per partial accumulator —
    see :meth:`Func.reduction_strip_rows`); 0 draws the default.  The
    parallel draw is gated on the live pool configuration like
    :func:`_sample_schedule`; only associative reductions then honour it at
    realize time, so every candidate is safe to time.
    """
    strip = rng.choice(_TILE_CHOICES)
    want_parallel = rng.random() < 0.5 and _pool_allows_parallel()
    return Schedule(tile_x=0, tile_y=strip,
                    vectorize=rng.choice(_VECTORIZE_CHOICES),
                    parallel=want_parallel)


def _select_timed(scores: list[CandidateScore], top_k: int | None
                  ) -> list[int]:
    """Candidate indices to wall-clock-time: baseline + top-k survivors.

    Index 0 is the baseline schedule; it is always timed (first), so the
    best *measured* time can never regress below the default schedule and
    the tuned-vs-default benchmark win is by construction.  Of the sampled
    candidates, at most ``top_k`` — the model's best — are timed.
    """
    sampled_order = [score.index for score in scores if score.index != 0]
    if top_k is not None:
        sampled_order = sampled_order[:max(int(top_k), 0)]
    return [0] + sampled_order


def _schedule_key(schedule: Schedule) -> tuple:
    """Complete structural identity of one Schedule.

    ``describe()`` is deliberately lossy (a ``tile_y``-only reduction strip
    reads the same as the default), so dedupe must compare fields, not
    descriptions — otherwise distinct strip heights collapse into one
    candidate.  The vectorize flag is folded to its effective SIMD width so
    distinct widths stay distinct while ``True`` and the explicit default
    width (which lower to the same program) collapse.
    """
    return (schedule.tile_x, schedule.tile_y, vectorize_width(schedule),
            schedule.parallel, schedule.fuse_producers, schedule.compute,
            schedule.compute_at)


def _dedupe(candidates, key):
    """Drop candidates whose structural key duplicates an earlier one."""
    seen = set()
    unique = []
    for candidate in candidates:
        candidate_key = key(candidate)
        if candidate_key in seen:
            continue
        seen.add(candidate_key)
        unique.append(candidate)
    return unique


def autotune(func: Func, shape, buffers, params=None, iterations: int = 10,
             seed: int = 0, engine: str | None = None,
             top_k: int | None = DEFAULT_TOP_K, store=None,
             reuse: bool = True) -> TuneResult:
    """Search schedules for ``func`` on the given workload.

    ``iterations`` candidates are sampled, ranked by the cost model, and
    only the baseline plus the ``top_k`` best-ranked are timed end to end
    through the selected engine (``top_k=None`` times everything); the Func
    is left carrying the best schedule found.  With a ``store``, a
    persisted record for this machine + workload short-circuits the whole
    session (``reuse=False`` forces a fresh search) and the session's
    winner is persisted for the next caller.
    """
    rng = random.Random(seed)
    params = params or {}
    np_shape = tuple(reversed(tuple(int(d) for d in shape)))
    if store is not None and reuse:
        record = TuningDatabase(store).lookup(func_workload(func, np_shape),
                                              engine=engine)
        if record is not None and record.valid_for(1):
            func.schedule = replace(record.schedules[0])
            tuner_stats["db_hits"] += 1
            return TuneResult(best_schedule=func.schedule,
                              best_time=record.best_time,
                              evaluations=0, history=[],
                              source="database")
    # Spin the worker threads up outside the timed region (a no-op for
    # single-worker pools).
    warm_pool()
    sampler = _sample_reduction_schedule if func.reduction is not None \
        else _sample_schedule
    candidates = [Schedule()] + [sampler(rng) for _ in range(iterations)]
    candidates = _dedupe(candidates, _schedule_key)
    scores = rank_func_candidates(func, np_shape, candidates,
                                  buffers=buffers, backend=engine)
    history: list[tuple[Schedule, float]] = []
    best_schedule, best_time = None, float("inf")
    for index in _select_timed(scores, top_k):
        candidate = candidates[index]
        func.schedule = candidate
        elapsed = _time_schedule(func, shape, buffers, params, engine)
        history.append((candidate, elapsed))
        if elapsed < best_time:
            best_time = elapsed
            best_schedule = candidate
    func.schedule = best_schedule
    result = TuneResult(best_schedule=best_schedule, best_time=best_time,
                        evaluations=len(history), history=history,
                        ranked=scores, candidates=candidates)
    if store is not None:
        record = TuningRecord(
            schedules=[replace(best_schedule)],
            best_time=best_time,
            evaluations=len(history),
            history=[(s.describe(), t) for s, t in history],
            pool_width=pool_size(),
            engine=engine or "default")
        TuningDatabase(store).record(func_workload(func, np_shape), record,
                                     engine=engine)
        tuner_stats["db_stores"] += 1
    return result


# ---------------------------------------------------------------------------
# Pipeline-level tuning: tiles + parallelism + compute levels
# ---------------------------------------------------------------------------


@dataclass
class PipelineTuneResult:
    """Outcome of a pipeline autotuning session.

    ``best_schedules`` holds one :class:`Schedule` per stage (the winning
    compute levels included); ``history`` pairs each *timed* candidate's
    per-stage ``describe()`` strings with its measured time; ``ranked`` is
    the cost model's ordering of the full sampled set.
    """

    best_schedules: list[Schedule]
    best_time: float
    evaluations: int
    history: list[tuple[tuple[str, ...], float]]
    ranked: list[CandidateScore] = field(default_factory=list)
    #: The deduped candidate set the ranking indexes into (baseline first);
    #: one per-stage schedule list per candidate.
    candidates: list[list[Schedule]] = field(default_factory=list)
    source: str = "search"


def _sample_pipeline_schedules(pipeline, rng: random.Random) -> list[Schedule]:
    """One random per-stage schedule assignment.

    The output stage draws tiles/parallelism like :func:`_sample_schedule`;
    every producer draws a compute level: ``default`` (legacy stage-by-stage
    with pointwise inline fusion), ``root``, or — when the consumer can
    anchor it — ``at`` the consumer's second-innermost variable.
    """
    stages = pipeline.stages
    out_schedule = _sample_reduction_schedule(rng) \
        if stages[-1].func.reduction is not None else _sample_schedule(rng)
    out_schedule.compute = "root" if rng.random() < 0.7 else "default"
    schedules: list[Schedule] = []
    for index, stage in enumerate(stages[:-1]):
        consumer = stages[index + 1]
        if stage.func.reduction is not None:
            # Reduction producers never compute_at; sample their strip
            # height and parallel flag at root/default instead.
            schedule = _sample_reduction_schedule(rng)
            schedule.compute = "root" if rng.random() < 0.7 else "default"
            schedules.append(schedule)
            continue
        choice = rng.choice(("default", "root", "at"))
        schedule = Schedule()
        if choice == "at" and len(consumer.func.variables) >= 1:
            anchor_var = consumer.func.variables[
                1 if len(consumer.func.variables) >= 2 else 0]
            schedule.compute = "at"
            schedule.compute_at = (consumer.name, anchor_var.name)
        elif choice == "root":
            schedule.compute = "root"
        schedules.append(schedule)
    schedules.append(out_schedule)
    return schedules


def _apply_schedules(pipeline, schedules: list[Schedule]) -> None:
    for stage, schedule in zip(pipeline.stages, schedules):
        stage.func.schedule = schedule


def _time_pipeline(pipeline, image, params, engine, repeats: int = 3) -> float:
    best = float("inf")
    tuner_stats["timed_evaluations"] += 1
    for _ in range(repeats):
        start = time.perf_counter()
        pipeline.realize(image, params, engine=engine)
        best = min(best, time.perf_counter() - start)
    return best


def autotune_pipeline(pipeline, image, params=None, iterations: int = 10,
                      seed: int = 0, engine: str | None = None,
                      top_k: int | None = DEFAULT_TOP_K, store=None,
                      reuse: bool = True) -> PipelineTuneResult:
    """Search per-stage schedules (incl. compute levels) for a pipeline.

    Candidates that schedule a producer ``compute_at`` run through the
    lowered loop-nest IR with tile-plus-ghost-zone scratch buffers; the
    lowering demotes anchors it cannot bound (recorded in
    ``FuncPipeline.describe``), and the cost model sorts every demoted
    candidate *after* every fully-honoured one, so the timed top-k is spent
    on candidates whose requested levels actually run.  The pipeline is
    left carrying the best schedules found.  Database semantics (``store``,
    ``reuse``) match :func:`autotune`.
    """
    rng = random.Random(seed)
    params = params or {}
    frame_shape = tuple(int(d) for d in image.shape)
    if store is not None and reuse:
        record = TuningDatabase(store).lookup(
            pipeline_workload(pipeline, frame_shape), engine=engine)
        if record is not None and record.valid_for(len(pipeline.stages)):
            best = [replace(s) for s in record.schedules]
            _apply_schedules(pipeline, best)
            tuner_stats["db_hits"] += 1
            return PipelineTuneResult(best_schedules=best,
                                      best_time=record.best_time,
                                      evaluations=0,
                                      history=list(record.history or []),
                                      source="database")
    warm_pool()
    baseline = [replace(stage.func.schedule) for stage in pipeline.stages]
    candidates = [baseline] + [_sample_pipeline_schedules(pipeline, rng)
                               for _ in range(iterations)]
    candidates = _dedupe(candidates,
                         lambda ss: tuple(_schedule_key(s) for s in ss))
    scores = rank_pipeline_candidates(pipeline, frame_shape, candidates,
                                      backend=engine)
    history: list[tuple[tuple[str, ...], float]] = []
    best_schedules, best_time = None, float("inf")
    for index in _select_timed(scores, top_k):
        candidate = candidates[index]
        _apply_schedules(pipeline, candidate)
        elapsed = _time_pipeline(pipeline, image, params, engine)
        history.append((tuple(s.describe() for s in candidate), elapsed))
        if elapsed < best_time:
            best_time = elapsed
            best_schedules = candidate
    _apply_schedules(pipeline, best_schedules)
    result = PipelineTuneResult(best_schedules=list(best_schedules),
                                best_time=best_time,
                                evaluations=len(history), history=history,
                                ranked=scores, candidates=candidates)
    if store is not None:
        record = TuningRecord(
            schedules=[replace(s) for s in best_schedules],
            best_time=best_time,
            evaluations=len(history),
            history=history,
            pool_width=pool_size(),
            engine=engine or "default")
        TuningDatabase(store).record(
            pipeline_workload(pipeline, frame_shape), record, engine=engine)
        tuner_stats["db_stores"] += 1
    return result
