"""A mini-Halide: enough of the Halide front end to host Helium's output.

The real Halide is not available offline, so this package provides the pieces
the lifted code needs — ``Var``, ``Func``, ``ImageParam``, ``RDom``, ``cast``
and ``select`` — together with a NumPy *realizer* that evaluates a function
over its output domain, a small scheduling model (tiling / vectorize-by-numpy)
and a random-search autotuner standing in for OpenTuner.
"""

from .func import Func, ImageParam, RDom, Schedule, Var
from .realize import realize
from .autotune import autotune
from .pipeline import FusedPipeline

__all__ = ["Func", "ImageParam", "RDom", "Schedule", "Var", "realize",
           "autotune", "FusedPipeline"]
