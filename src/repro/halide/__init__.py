"""A mini-Halide: enough of the Halide front end to host Helium's output.

The real Halide is not available offline, so this package provides the pieces
the lifted code needs — ``Var``, ``Func``, ``ImageParam``, ``RDom``, ``cast``
and ``select`` — together with two NumPy *realization engines*: a tree-walking
interpreter (the oracle) and a compiled backend that lowers each function to a
fused, CSE'd kernel, compiles it once and caches it.  On top of the compiled
engine sit two throughput layers: tiled schedules marked ``parallel`` execute
their tiles across a shared worker pool (:mod:`repro.halide.parallel`), and a
batched realization service (:class:`PipelineServer` / :func:`realize_batch`)
compiles a pipeline once and serves many frames concurrently with bounded
queueing.  A small scheduling model (tiling / vectorize-by-numpy /
parallel-by-tiles), Func-level pipeline fusion and a cost-model-guided
autotuner standing in for OpenTuner — candidate schedules are ranked
analytically (:mod:`repro.halide.costmodel`) so only the top-k are timed,
and measured winners persist in the artifact store's ``tuning/`` stage
(:mod:`repro.halide.tuningdb`) for zero-cost warm starts — round out the
front end.
"""

from .func import Func, ImageParam, RDom, Schedule, Var
from .realize import ENGINES, realize, realize_interp, set_default_engine
from .backends import Backend, backend_names, get_backend
from .lower import (
    LoweredPipeline,
    PipelineLoweringError,
    StageDecision,
    lower_pipeline,
)
from .compile import (
    CompiledKernel,
    clear_kernel_cache,
    compile_func,
    kernel_cache_stats,
)
from .parallel import (
    ParallelFallbackWarning,
    configure_pool,
    execution_stats,
    pool_size,
    reset_execution_stats,
)
from .serve import BatchResult, PipelineServer, realize_batch
from .autotune import (
    PipelineTuneResult,
    TuneResult,
    autotune,
    autotune_pipeline,
    reset_tuner_stats,
    tuner_stats,
)
from .costmodel import (
    CandidateScore,
    StageFeatures,
    rank_func_candidates,
    rank_pipeline_candidates,
    score_features,
)
from .tuningdb import (
    TuningDatabase,
    TuningRecord,
    machine_fingerprint,
    warm_start_func,
    warm_start_pipeline,
)
from .pipeline import FuncPipeline, FuncStage, FusedPipeline, inline_producer

__all__ = ["Func", "ImageParam", "RDom", "Schedule", "Var", "realize",
           "realize_interp", "set_default_engine", "ENGINES",
           "CompiledKernel", "compile_func", "kernel_cache_stats",
           "clear_kernel_cache", "autotune", "autotune_pipeline",
           "PipelineTuneResult", "TuneResult", "tuner_stats",
           "reset_tuner_stats", "FusedPipeline",
           "FuncPipeline", "FuncStage", "inline_producer",
           "CandidateScore", "StageFeatures", "score_features",
           "rank_func_candidates", "rank_pipeline_candidates",
           "TuningDatabase", "TuningRecord", "machine_fingerprint",
           "warm_start_func", "warm_start_pipeline",
           "ParallelFallbackWarning", "configure_pool", "execution_stats",
           "pool_size", "reset_execution_stats",
           "BatchResult", "PipelineServer", "realize_batch",
           "Backend", "backend_names", "get_backend",
           "LoweredPipeline", "PipelineLoweringError", "StageDecision",
           "lower_pipeline"]
