"""Pipelines of lifted kernels, fused or materialized.

Lifting to the algorithm level lets Helium compose kernels: a fused pipeline
inlines each producer into its consumer (improving locality, paper section
6.4), while the unfused variant materializes every intermediate image the way
the original applications do.

Two granularities are provided.  :class:`FusedPipeline` chains opaque
image-to-image callables and fuses by tiling.  :class:`FuncPipeline` chains
lifted :class:`~repro.halide.func.Func` stages symbolically: pointwise
producers are inlined into their consumers at the IR level (Halide's
``compute_inline``), so the fused stage compiles to one kernel that never
materializes the intermediate image at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from ..ir import BufferAccess, Cast, Expr, canonicalize, substitute
from .func import Func, vectorize_width
from .realize import realize


@dataclass
class PipelineStage:
    """One kernel in a pipeline: a callable from image to image."""

    name: str
    apply: Callable[[np.ndarray], np.ndarray]


@dataclass
class FusedPipeline:
    """A pipeline of lifted kernels that can run fused or stage-by-stage."""

    stages: list[PipelineStage] = field(default_factory=list)

    def add(self, name: str, apply: Callable[[np.ndarray], np.ndarray]) -> "FusedPipeline":
        self.stages.append(PipelineStage(name, apply))
        return self

    def run_unfused(self, image: np.ndarray) -> np.ndarray:
        """Run stage by stage, materializing every intermediate (legacy style)."""
        current = image
        for stage in self.stages:
            current = np.ascontiguousarray(stage.apply(current))
        return current

    def run_fused(self, image: np.ndarray, tile_rows: int = 32) -> np.ndarray:
        """Run the whole pipeline tile-by-tile to keep intermediates in cache."""
        if image.shape[0] <= tile_rows:
            return self.run_unfused(image)
        outputs = []
        halo = 2 * len(self.stages)
        for start in range(0, image.shape[0], tile_rows):
            stop = min(start + tile_rows, image.shape[0])
            lo = max(0, start - halo)
            hi = min(image.shape[0], stop + halo)
            tile = image[lo:hi]
            result = self.run_unfused(tile)
            outputs.append(result[start - lo: start - lo + (stop - start)])
        return np.concatenate(outputs, axis=0)


# ---------------------------------------------------------------------------
# Func-level pipelines with IR inlining
# ---------------------------------------------------------------------------


@dataclass
class FuncStage:
    """One lifted Func in a pipeline.

    ``input_name`` is the buffer name the stage's expression uses for the
    incoming image; ``pad`` is edge padding (per side, every axis unless
    ``pad_width`` overrides it) applied before realizing, the way the app
    wrappers pad stencil inputs.
    """

    name: str
    func: Func
    input_name: str = "input_1"
    pad: int = 0
    pad_width: tuple | None = None

    def consumes_pointwise(self) -> bool:
        """True when every access to the stage input reads the output point.

        This is the case where inlining the producer is always profitable:
        the consumed region is a single point, so substitution duplicates no
        producer work (inlining into a stencil consumer would recompute the
        producer once per tap).
        """
        if self.func.value is None or self.func.reduction is not None:
            return False
        if self.pad != 0 or self.pad_width is not None:
            return False
        variables = self.func.variables
        for node in self.func.value.walk():
            if not isinstance(node, BufferAccess) or node.buffer != self.input_name:
                continue
            if len(node.indices) != len(variables):
                return False
            for position, index in enumerate(node.indices):
                if index != variables[position]:
                    return False
        return True


def inline_producer(consumer: Func, consumer_input: str, producer: Func) -> Func:
    """Inline ``producer``'s expression into ``consumer`` (compute_inline).

    Every ``consumer_input(idx...)`` access becomes the producer's value with
    its variables substituted by ``idx...`` and re-quantized through the
    producer's output dtype — exactly the values the materialized
    intermediate would have held, so fusion is bit-exact.
    """
    if producer.value is None or producer.reduction is not None:
        raise ValueError(f"cannot inline non-pure producer {producer.name}")

    def rewrite(node: Expr) -> Expr:
        if not isinstance(node, BufferAccess) or node.buffer != consumer_input:
            return node
        if len(node.indices) != len(producer.variables):
            raise ValueError(
                f"cannot inline {producer.name}: access {node} has "
                f"{len(node.indices)} indices but the producer has "
                f"{len(producer.variables)} variables")
        mapping = {var: index for var, index in zip(producer.variables, node.indices)}
        inlined: Expr = Cast(producer.dtype, substitute(producer.value, mapping))
        if node.dtype != producer.dtype:
            inlined = Cast(node.dtype, inlined)
        return inlined

    fused_value = canonicalize(consumer.value.transform(rewrite))
    return Func(name=f"{producer.name}__{consumer.name}",
                variables=list(consumer.variables), value=fused_value,
                dtype=consumer.dtype, inputs=list(producer.inputs),
                schedule=replace(consumer.schedule))


class FuncPipeline:
    """A pipeline of lifted Funcs realized stage by stage, with IR fusion.

    Stages carrying an explicit compute level (``func.compute_root()`` /
    ``func.compute_at(consumer, var)``) are realized through the lowered
    loop-nest IR (:mod:`repro.halide.lower`): bounds are inferred consumer
    to producer, borders are clamped instead of padded, ``compute_at``
    producers materialize into tile-plus-ghost-zone scratch buffers instead
    of full-frame temporaries, and reduction (RDom) stages lower to an init
    store plus update sweeps — with parallel partial accumulators for
    associative accumulations.  Default-scheduled stages keep the legacy
    padded stage-by-stage path; both are bit-identical.
    """

    def __init__(self, stages: Sequence[FuncStage] | None = None) -> None:
        self.stages: list[FuncStage] = list(stages or [])
        self._lowered_cache: dict = {}

    def add(self, func: Func, input_name: str = "input_1", pad: int = 0,
            pad_width: tuple | None = None, name: str | None = None) -> "FuncPipeline":
        self.stages.append(FuncStage(name=name or func.name, func=func,
                                     input_name=input_name, pad=pad,
                                     pad_width=pad_width))
        return self

    def fused(self) -> "FuncPipeline":
        """Inline producers into pointwise consumers (when regions allow).

        A stage that consumes its input pointwise reads exactly one producer
        point per output point, so substituting the producer's expression
        duplicates no work and the intermediate image is never materialized.
        Stencil consumers keep their producer materialized (inlining there
        would recompute the producer once per tap).
        """
        fused: list[FuncStage] = []
        for stage in self.stages:
            if fused and stage.consumes_pointwise() \
                    and stage.func.schedule.fuse_producers \
                    and fused[-1].func.value is not None \
                    and fused[-1].func.reduction is None:
                producer = fused[-1]
                merged = inline_producer(stage.func, stage.input_name, producer.func)
                fused[-1] = FuncStage(name=f"{producer.name}+{stage.name}",
                                      func=merged, input_name=producer.input_name,
                                      pad=producer.pad, pad_width=producer.pad_width)
                continue
            fused.append(FuncStage(name=stage.name, func=stage.func,
                                   input_name=stage.input_name, pad=stage.pad,
                                   pad_width=stage.pad_width))
        return FuncPipeline(fused)

    def uses_lowering(self) -> bool:
        """True when some stage asks for an explicit compute level."""
        return any(stage.func.schedule.compute in ("root", "at")
                   for stage in self.stages)

    def _lowering_key(self, frame_shape: tuple[int, ...],
                      include_schedules: bool = True) -> tuple:
        """Structural identity of this pipeline at one frame shape.

        With ``include_schedules`` (the default) the key distinguishes
        schedule assignments too — the lowering memo needs that.  Without it
        the key names the *workload* independent of how it is currently
        scheduled, which is what the tuning database keys records by (the
        record's payload is the schedule assignment itself).
        """
        parts = []
        for stage in self.stages:
            schedule = stage.func.schedule
            reduction_key = None
            if stage.func.reduction is not None:
                rdom, index_exprs, update = stage.func.reduction
                reduction_key = (rdom.name, rdom.source, rdom.dimensions,
                                 tuple(e.cached_key() for e in index_exprs),
                                 update.cached_key())
            part = (
                stage.name, stage.input_name, stage.pad, stage.pad_width,
                stage.func.name, stage.func.dtype,
                stage.func.value.cached_key() if stage.func.value is not None
                else None,
                reduction_key)
            if include_schedules:
                part += (schedule.compute, schedule.compute_at,
                         schedule.tile_x, schedule.tile_y, schedule.parallel,
                         vectorize_width(schedule))
            parts.append(part)
        return (tuple(frame_shape), tuple(parts))

    #: Bound on memoized lowerings (per pipeline): serving mixed frame
    #: shapes re-lowers per shape, and the memo must not grow with every
    #: resolution ever seen.  Evicts least-recently-used beyond this.
    MAX_LOWERED_CACHE = 8

    def lower(self, frame_shape: tuple[int, ...]):
        """The pipeline lowered over this frame shape (memoized, LRU-bounded).

        Returns a :class:`~repro.halide.lower.LoweredPipeline`; raises
        :class:`~repro.halide.lower.PipelineLoweringError` when the pipeline
        cannot be expressed in the loop-nest IR (e.g. a reduction whose RDom
        does not range over the stage's own input at frame rank).
        """
        from .lower import lower_pipeline

        key = self._lowering_key(frame_shape)
        lowered = self._lowered_cache.get(key)
        if lowered is None:
            lowered = lower_pipeline(self, frame_shape)
        else:
            del self._lowered_cache[key]         # re-insert as most recent
        self._lowered_cache[key] = lowered
        while len(self._lowered_cache) > self.MAX_LOWERED_CACHE:
            self._lowered_cache.pop(next(iter(self._lowered_cache)))
        return lowered

    def describe(self, frame_shape: tuple[int, ...]) -> str:
        """The real execution plan for this frame shape.

        For scheduled pipelines: per-stage compute levels, inferred bounds,
        scratch sizes and the lowered loop nest.  For default pipelines: the
        legacy stage-by-stage plan.
        """
        if self.uses_lowering():
            from .lower import PipelineLoweringError

            try:
                return self.lower(tuple(frame_shape)).describe()
            except PipelineLoweringError as error:
                return (f"legacy stage-by-stage realization "
                        f"(lowering unavailable: {error})")
        lines = ["legacy stage-by-stage realization:"]
        for stage in self.stages:
            lines.append(f"  {stage.name}: full-frame "
                         f"[{stage.func.schedule.describe()}]"
                         + (f" pad={stage.pad}" if stage.pad else ""))
        return "\n".join(lines)

    def realize(self, image: np.ndarray, params: Mapping[str, float] | None = None,
                engine: str | None = None, stats: dict | None = None) -> np.ndarray:
        """Run the pipeline on one image (NumPy outermost-first layout).

        Pipelines with explicitly scheduled stages execute through the
        lowered loop-nest IR on the selected backend (``stats``, when given,
        collects store/allocation counters from that executor).  Otherwise
        each stage pads its input as the app wrappers do, then realizes its
        Func through the selected engine (compiled by default); stage
        schedules — tiling and ``parallel`` — are honoured per stage.  For
        many images, prefer :meth:`realize_batch`, which overlaps whole
        requests across the worker pool.
        """
        if self.uses_lowering():
            from .lower import PipelineLoweringError

            lowered = None
            try:
                lowered = self.lower(np.asarray(image).shape)
            except PipelineLoweringError:
                pass           # unlowerable geometry: legacy path below
            if lowered is not None:
                from .backends import get_backend
                from .realize import get_default_engine

                choice = engine if engine is not None else get_default_engine()
                return get_backend(choice).execute(lowered, image, params,
                                                   stats)
        current = image
        for stage in self.stages:
            if stage.pad_width is not None:
                padded = np.pad(current, stage.pad_width, mode="edge")
            elif stage.pad:
                padded = np.pad(current, stage.pad, mode="edge")
            else:
                padded = current
            shape = tuple(reversed(current.shape))
            current = realize(stage.func, shape, {stage.input_name: padded},
                              params, engine=engine)
        return current

    def realize_batch(self, images: Sequence[np.ndarray],
                      params: Mapping[str, float] | None = None,
                      engine: str | None = None,
                      max_pending: int | None = None):
        """Realize many images through one compiled pipeline, concurrently.

        Compiles every stage once, then fans the images out across the shared
        worker pool with bounded queueing; returns a
        :class:`~repro.halide.serve.BatchResult` whose ``outputs`` are in
        input order.  This is the serving path: per-image results are
        bit-identical to calling :meth:`realize` in a loop.
        """
        from .serve import realize_batch as _realize_batch

        requests = [{"image": image, "params": params} for image in images]
        return _realize_batch(self, requests, max_pending=max_pending,
                              engine=engine)
