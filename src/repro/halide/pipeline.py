"""Pipelines of lifted kernels, fused or materialized.

Lifting to the algorithm level lets Helium compose kernels: a fused pipeline
inlines each producer into its consumer (improving locality, paper section
6.4), while the unfused variant materializes every intermediate image the way
the original applications do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np


@dataclass
class PipelineStage:
    """One kernel in a pipeline: a callable from image to image."""

    name: str
    apply: Callable[[np.ndarray], np.ndarray]


@dataclass
class FusedPipeline:
    """A pipeline of lifted kernels that can run fused or stage-by-stage."""

    stages: list[PipelineStage] = field(default_factory=list)

    def add(self, name: str, apply: Callable[[np.ndarray], np.ndarray]) -> "FusedPipeline":
        self.stages.append(PipelineStage(name, apply))
        return self

    def run_unfused(self, image: np.ndarray) -> np.ndarray:
        """Run stage by stage, materializing every intermediate (legacy style)."""
        current = image
        for stage in self.stages:
            current = np.ascontiguousarray(stage.apply(current))
        return current

    def run_fused(self, image: np.ndarray, tile_rows: int = 32) -> np.ndarray:
        """Run the whole pipeline tile-by-tile to keep intermediates in cache."""
        if image.shape[0] <= tile_rows:
            return self.run_unfused(image)
        outputs = []
        halo = 2 * len(self.stages)
        for start in range(0, image.shape[0], tile_rows):
            stop = min(start + tile_rows, image.shape[0])
            lo = max(0, start - halo)
            hi = min(image.shape[0], stop + halo)
            tile = image[lo:hi]
            result = self.run_unfused(tile)
            outputs.append(result[start - lo: start - lo + (stop - start)])
        return np.concatenate(outputs, axis=0)
