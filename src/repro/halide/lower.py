"""Lowering: scheduled pipelines -> loop-nest ``Stmt`` IR with bounds inference.

This is the layer a Halide-style compiler inserts between the scheduled
front end and its backends.  :func:`lower_pipeline` takes a
:class:`~repro.halide.pipeline.FuncPipeline` whose stages carry explicit
compute levels (``compute_root`` / ``compute_at``) and produces a
:class:`LoweredPipeline`: a :class:`~repro.ir.stmt.Stmt` tree that any
backend (:mod:`repro.halide.backends`) can execute, plus a per-stage report
of the scheduling decisions actually taken.

The lowering performs **interval-based bounds inference**: required regions
are propagated consumer -> producer through each stage's stencil footprint
(the per-axis min/max of its shifted-window taps, with the stage's edge
padding folded in), so a ``compute_at`` producer materializes exactly the
tile-plus-ghost-zone region its consumer tile reads — never the full frame.
Borders are handled by *clamping* instead of input padding: a region that
pokes outside the frame is clamped to the frame and the missing ghost rows
are edge-replicated (:class:`~repro.ir.stmt.PadEdge`), which is
bit-identical to the ``np.pad(..., mode="edge")`` the legacy stage-by-stage
realizer applies.  Tiles whose footprint stays inside the frame take a
pure-shift fast path; border tiles take a clamped-index path — the
:class:`~repro.ir.stmt.IfThenElse` split Halide calls loop partitioning.

Reduction (RDom) stages are first-class lowered stages: the pure initializer
becomes an ordinary :class:`~repro.ir.stmt.Store`, the update becomes a
:class:`~repro.ir.stmt.ReduceLoop` sweep over the RDom source (whose extents
fold into the required region exactly like a stencil footprint — the whole
source domain), and associative accumulations scheduled ``parallel`` lower
to a **two-phase schedule**: disjoint source strips fill private partial
accumulators under a parallel :class:`~repro.ir.stmt.For`, then a
deterministic serial merge loop (:class:`~repro.ir.stmt.AccumMerge`) folds
the partials into the output.  Non-associative updates (scatter-assign,
float accumulation) keep a single serialized whole-domain sweep —
bit-identical to the interpreter oracle by construction.

What demotes to ``compute_root`` (recorded in the report): taps into the
producer that are not axis-aligned shifted windows (no finite footprint to
infer bounds from), ``compute_at`` requests on or into a reduction stage
(an accumulator materializes whole, and its consumer reads whole frames),
and anchor names that do not match the consuming stage.  What still falls
back to the legacy stage-by-stage path (:class:`PipelineLoweringError`):
reduction stages whose RDom does not range over the stage's own input at
frame rank, or that pad their input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..ir import (
    AccumMerge,
    Allocate,
    BinOp,
    Block,
    BufferAccess,
    Const,
    Expr,
    For,
    IfThenElse,
    INT32,
    Let,
    Op,
    PadEdge,
    Param,
    ProducerConsumer,
    ReduceLoop,
    Stmt,
    Store,
    Var as IRVar,
    canonicalize,
)
from .func import Func, RDom, Schedule


class PipelineLoweringError(Exception):
    """The pipeline cannot be lowered (e.g. reduction stages); callers fall
    back to the legacy stage-by-stage realization path."""


#: Default strip height for ``compute_at`` under an untiled consumer: the
#: producer materializes per consumer row, Halide's ``compute_at(f, y)``.
STRIP_HEIGHT = 1


# ---------------------------------------------------------------------------
# Scalar expression helpers (ints folded, Exprs built otherwise)
# ---------------------------------------------------------------------------


def _e(value) -> Expr:
    return Const(int(value), INT32) if isinstance(value, int) else value


def _add(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return a + b
    if isinstance(b, int) and b == 0:
        return a
    if isinstance(a, int) and a == 0:
        return b
    return BinOp(Op.ADD, _e(a), _e(b), INT32)


def _sub(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return a - b
    if isinstance(b, int) and b == 0:
        return a
    return BinOp(Op.SUB, _e(a), _e(b), INT32)


def _mul(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return a * b
    if isinstance(b, int) and b == 1:
        return a
    return BinOp(Op.MUL, _e(a), _e(b), INT32)


def _min_(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return min(a, b)
    return BinOp(Op.MIN, _e(a), _e(b), INT32)


def _max_(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return max(a, b)
    return BinOp(Op.MAX, _e(a), _e(b), INT32)


def _clamp(value, lo, hi):
    return _min_(_max_(value, lo), hi)


def _and_(a: Optional[Expr], b: Expr) -> Expr:
    return b if a is None else BinOp(Op.AND, a, b, INT32)


class _Lets:
    """Ordered scalar bindings for one loop body.

    Region origins, extents and clamped bounds are shared by many statements
    in a region; binding each once per iteration (a :class:`Let`) keeps the
    executor's scalar evaluation O(1) per reference instead of re-walking a
    growing bounds expression.
    """

    def __init__(self) -> None:
        self.bindings: list[tuple[str, Expr]] = []

    def bind(self, name: str, value):
        if isinstance(value, (int, IRVar)):
            return value                   # already trivial to evaluate
        self.bindings.append((name, value))
        return IRVar(name)

    def wrap(self, stmt: Stmt) -> Stmt:
        for name, value in reversed(self.bindings):
            stmt = Let(name, value, stmt)
        return stmt


# ---------------------------------------------------------------------------
# Footprints
# ---------------------------------------------------------------------------


def _shift_of_index(index: Expr) -> Optional[tuple[str, int]]:
    """Match ``var``, ``var + c`` or ``c + var``; None for anything else."""
    if isinstance(index, IRVar):
        return index.name, 0
    if isinstance(index, BinOp) and index.op == Op.ADD:
        a, b = index.a, index.b
        if isinstance(a, IRVar) and isinstance(b, Const) and isinstance(b.value, int):
            return a.name, int(b.value)
        if isinstance(b, IRVar) and isinstance(a, Const) and isinstance(a.value, int):
            return b.name, int(a.value)
    return None


@dataclass
class _Footprint:
    """Per-NumPy-axis effective tap offsets of one stage into its input.

    ``lo[a]``/``hi[a]`` bound the stencil reach along axis ``a`` *after*
    folding in the stage's edge padding: an access ``input(x + o)`` into an
    input padded by ``p`` reads unpadded coordinate ``x + o - p``, so its
    effective offset is ``o - p``.  ``stencil`` is False when some tap is
    not an axis-aligned shifted window (bounds not inferable).
    """

    lo: list[int]
    hi: list[int]
    stencil: bool = True
    reads_input: bool = True


def _stage_footprint(func: Func, input_name: str,
                     pad_before: Sequence[int]) -> _Footprint:
    rank = len(func.variables)
    var_position = {v.name: p for p, v in enumerate(func.variables)}
    lo: list[Optional[int]] = [None] * rank
    hi: list[Optional[int]] = [None] * rank
    stencil = True
    any_access = False
    if func.value is None:
        return _Footprint([0] * rank, [0] * rank, stencil=False,
                          reads_input=False)
    for node in func.value.walk():
        if not isinstance(node, BufferAccess) or node.buffer != input_name:
            continue
        any_access = True
        if len(node.indices) != rank:
            stencil = False
            continue
        offsets = []
        for position, index in enumerate(node.indices):
            shift = _shift_of_index(index)
            if shift is None or var_position.get(shift[0]) != position:
                offsets = None
                break
            offsets.append(shift[1])
        if offsets is None:
            stencil = False
            continue
        for position, offset in enumerate(offsets):
            axis = rank - 1 - position
            eff = offset - pad_before[axis]
            lo[axis] = eff if lo[axis] is None else min(lo[axis], eff)
            hi[axis] = eff if hi[axis] is None else max(hi[axis], eff)
    lo = [0 if v is None else v for v in lo]
    hi = [0 if v is None else v for v in hi]
    if not any_access:
        return _Footprint(lo, hi, stencil=stencil, reads_input=False)
    return _Footprint(lo, hi, stencil=stencil)


def _pad_pairs(stage, rank: int) -> list[tuple[int, int]]:
    """The stage's ``np.pad`` amounts as (before, after) per NumPy axis."""
    if stage.pad_width is not None:
        pw = stage.pad_width
        if isinstance(pw, int):
            return [(pw, pw)] * rank
        pw = tuple(pw)
        if len(pw) == 2 and all(isinstance(v, int) for v in pw):
            return [(int(pw[0]), int(pw[1]))] * rank
        if len(pw) != rank:
            raise PipelineLoweringError(
                f"stage {stage.name}: pad_width {pw!r} does not match rank {rank}")
        return [(int(b), int(a)) for b, a in pw]
    return [(int(stage.pad), int(stage.pad))] * rank


# ---------------------------------------------------------------------------
# Expression retargeting
# ---------------------------------------------------------------------------


def _retarget(expr: Expr, input_name: str, target: str, *,
              delta_by_pos: Optional[Sequence[int]] = None,
              clamp_by_pos: Optional[Sequence[tuple[int, int, int]]] = None,
              var_params: Optional[dict[str, Param]] = None) -> Expr:
    """Rewrite every tap into ``input_name`` to read ``target`` instead.

    Exactly one of the two index rewrites applies:

    * ``delta_by_pos`` — shifted-window taps get their offsets adjusted by a
      per-position constant (pure shifts stay pure shifts, keeping the
      backends' dense window loads);
    * ``clamp_by_pos`` — each index expression ``e`` becomes
      ``clamp(e - pad, 0, dim - 1)`` with per-position ``(pad, 0, dim-1)``,
      reproducing edge padding for border regions and complex taps.

    ``var_params`` maps loop-variable names to :class:`Param` nodes added to
    every occurrence *outside* the rewritten taps — the mechanism that keeps
    expressions evaluated in tile-local coordinates correct when they also
    use the loop variables directly (the Param carries the tile base).
    """

    def rec(node: Expr) -> Expr:
        if isinstance(node, BufferAccess) and node.buffer == input_name:
            new_indices = []
            for position, index in enumerate(node.indices):
                if delta_by_pos is not None:
                    shift = _shift_of_index(index)
                    if shift is None:
                        # Complex index: keep it, add the delta (used by the
                        # C++ emitter; lowering guards shift stores behind
                        # the stencil check and never reaches this).
                        rewritten = rec(index)
                        delta = delta_by_pos[position]
                        new_indices.append(
                            rewritten if delta == 0
                            else BinOp(Op.ADD, rewritten, Const(delta, INT32),
                                       INT32))
                        continue
                    name, offset = shift
                    new_offset = offset + delta_by_pos[position]
                    var = IRVar(name)
                    new_indices.append(
                        var if new_offset == 0
                        else BinOp(Op.ADD, var, Const(new_offset, INT32), INT32))
                else:
                    pad, lo, hi = clamp_by_pos[position]
                    shifted = rec(index)
                    if pad:
                        shifted = BinOp(Op.SUB, shifted, Const(pad, INT32), INT32)
                    new_indices.append(_clamp(shifted, Const(lo, INT32),
                                              Const(hi, INT32)))
            return BufferAccess(target, new_indices, node.dtype)
        if isinstance(node, IRVar) and var_params and node.name in var_params:
            return BinOp(Op.ADD, node, var_params[node.name], node.dtype)
        children = [rec(child) for child in node.children]
        if children != list(node.children):
            return node.with_children(children)
        return node

    return rec(expr)


def _rename_buffers(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rewrite every tap into a renamed buffer (indices rewritten too)."""

    def rec(node: Expr) -> Expr:
        if isinstance(node, BufferAccess) and node.buffer in mapping:
            return BufferAccess(mapping[node.buffer],
                                [rec(index) for index in node.indices],
                                node.dtype)
        children = [rec(child) for child in node.children]
        if children != list(node.children):
            return node.with_children(children)
        return node

    return rec(expr)


def _reduction_sweep(sched_func: Func, update_func: Func, out_buffer: str,
                     partials_buffer: str, out_shape: Sequence[int],
                     source_shape: Sequence[int], var_prefix: str,
                     let_prefix: str) -> tuple[Stmt, str]:
    """The update phase of one reduction: serial sweep or two-phase strips.

    ``sched_func`` supplies the schedule (parallel flag, strip height) and
    ``update_func`` is what the sweeps execute (taps already retargeted by
    the caller; the two may be the same Func).  Associative accumulations
    scheduled ``parallel`` produce the two-phase form — per-strip private
    partial accumulators (a zero-filled ``Allocate`` of one ``out_shape``
    slab per strip) filled under a parallel ``For``, then a deterministic
    serial merge loop — everything else the single serialized whole-domain
    ``ReduceLoop`` the oracle runs.  Returns ``(stmt, description)``; both
    the pipeline lowering and the standalone ``--explain`` form build from
    this one helper so they can never drift apart.
    """
    rank = len(source_shape)
    associative = update_func.reduction_is_associative()
    strip = sched_func.reduction_strip_rows()
    rows = source_shape[0] if source_shape else 0
    strips = -(-rows // strip) if rows else 1
    parallel = (sched_func.schedule.parallel and associative and strips >= 2
                and sched_func.parallel_unsupported_reason() is None)
    if not parallel:
        description = ("serial whole-domain sweep"
                       + ("" if associative else " (non-associative update)"))
        return ReduceLoop(buffer=out_buffer, func=update_func,
                          source_origin=(0,) * rank,
                          source_extent=tuple(source_shape),
                          associative=associative,
                          label="whole-domain"), description

    strip_var = IRVar(f"{var_prefix}.rstrip")
    lets = _Lets()
    lo = lets.bind(f"{let_prefix}lo", _mul(strip_var, strip))
    ext0 = lets.bind(f"{let_prefix}ext", _min_(strip, _sub(rows, lo)))
    sweep = ReduceLoop(buffer=partials_buffer, func=update_func,
                       source_origin=tuple([lo] + [0] * (rank - 1)),
                       source_extent=tuple([ext0] + list(source_shape[1:])),
                       associative=True, target_index=strip_var,
                       label="partial")
    fill = For(strip_var.name, 0, strips, lets.wrap(sweep), kind="parallel")
    merge_var = IRVar(f"{var_prefix}.merge")
    merge = For(merge_var.name, 0, strips,
                AccumMerge(target=out_buffer, source=partials_buffer,
                           index=merge_var, label="merge"))
    description = f"two-phase ({strips} strips x {strip} rows + serial merge)"
    return Allocate(partials_buffer, update_func.dtype,
                    (strips,) + tuple(out_shape),
                    Block([fill, merge]), fill=0), description


def _used_params(expr: Expr, candidates: dict[str, object]) -> dict:
    names = {node.name for node in expr.walk() if isinstance(node, Param)}
    return {name: value for name, value in candidates.items() if name in names}


# ---------------------------------------------------------------------------
# Per-stage lowering state
# ---------------------------------------------------------------------------


@dataclass
class StageDecision:
    """What the lowering actually did with one stage (for ``describe()``)."""

    name: str
    func_name: str
    level: str                         # 'output', 'root' or 'at'
    anchor: Optional[tuple[str, str]] = None
    requested: str = "default"
    demoted_reason: Optional[str] = None
    footprint: Optional[list[tuple[int, int]]] = None   # per np axis (lo, hi)
    scratch_extent: Optional[tuple[int, ...]] = None    # steady-state, np order
    buffer: str = ""
    #: For reduction stages: the update schedule actually lowered, e.g.
    #: ``"two-phase (10 strips x 64 rows + serial merge)"`` or
    #: ``"serial whole-domain sweep"``.
    reduction: Optional[str] = None

    def describe(self) -> str:
        parts = [f"{self.name}: {self.level}"]
        if self.level == "at" and self.anchor:
            parts[0] = (f"{self.name}: compute_at({self.anchor[0]}, "
                        f"{self.anchor[1]})")
        elif self.level == "root":
            parts[0] = f"{self.name}: compute_root"
        if self.footprint is not None:
            ghost = "x".join(f"[{lo},{hi}]" for lo, hi in self.footprint)
            parts.append(f"consumer footprint {ghost}")
        if self.scratch_extent is not None:
            parts.append("scratch "
                         + "x".join(str(e) for e in self.scratch_extent))
        if self.reduction is not None:
            parts.append(f"reduction {self.reduction}")
        if self.demoted_reason:
            parts.append(f"(demoted from {self.requested}: "
                         f"{self.demoted_reason})")
        return ", ".join(parts)


@dataclass
class _StageCtx:
    index: int
    stage: object                      # FuncStage
    func: Func
    input_buffer: str                  # resolved buffer id the taps read
    output_buffer: str                 # resolved buffer id this stage writes
    pad_before: list[int]
    footprint: _Footprint              # taps into its own input
    level: str                         # 'output' | 'root' | 'at'
    decision: StageDecision = None


@dataclass
class LoweredPipeline:
    """A pipeline lowered to the ``Stmt`` IR, ready for any backend."""

    stmt: Stmt
    input_name: str                    # buffer name bound to the frame image
    output: str                        # buffer name holding the result
    frame_shape: tuple[int, ...]       # NumPy order
    out_dtype: object
    decisions: list[StageDecision] = field(default_factory=list)

    def describe(self) -> str:
        """Per-stage scheduling decisions plus the lowered loop nest."""
        lines = [f"lowered pipeline over frame {list(self.frame_shape)}"]
        for decision in self.decisions:
            lines.append("  " + decision.describe())
        lines.append("loop nest:")
        lines.extend("  " + line for line in self.stmt.pretty().splitlines())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# The lowering
# ---------------------------------------------------------------------------


class _Lowerer:
    def __init__(self, pipeline, frame_shape: tuple[int, ...]) -> None:
        self.pipeline = pipeline
        self.frame_shape = tuple(int(d) for d in frame_shape)
        self.rank = len(self.frame_shape)

    # -- stage classification ------------------------------------------------

    def _contexts(self) -> list[_StageCtx]:
        stages = self.pipeline.stages
        if not stages:
            raise PipelineLoweringError("cannot lower an empty pipeline")
        contexts: list[_StageCtx] = []
        for index, stage in enumerate(stages):
            func = stage.func
            if func.reduction is None and func.value is None:
                raise PipelineLoweringError(
                    f"stage {stage.name} has no definition; the legacy "
                    "realization path handles it")
            if len(func.variables) != self.rank:
                raise PipelineLoweringError(
                    f"stage {stage.name} rank {len(func.variables)} != frame "
                    f"rank {self.rank}")
            pad_before = [pair[0] for pair in _pad_pairs(stage, self.rank)]
            if func.reduction is not None:
                self._check_reduction_lowerable(stage, func, pad_before)
                # A reduction reads its whole input domain: no finite stencil
                # footprint, and nothing upstream can compute_at into it.
                footprint = _Footprint([0] * self.rank, [0] * self.rank,
                                       stencil=False)
            else:
                footprint = _stage_footprint(func, stage.input_name,
                                             pad_before)
            contexts.append(_StageCtx(
                index=index, stage=stage, func=func,
                input_buffer="", output_buffer="",
                pad_before=pad_before, footprint=footprint, level="root"))

        # Resolve compute levels back to front; the last stage is the output.
        for index, ctx in enumerate(contexts):
            schedule = ctx.func.schedule
            requested = schedule.compute
            is_last = index == len(contexts) - 1
            level, reason, anchor = "root", None, None
            if is_last:
                level = "output"
                if requested == "at":
                    reason = "the output stage has no consumer to compute at"
            elif requested == "at":
                consumer = contexts[index + 1]
                anchor = schedule.compute_at
                consumer_names = {consumer.stage.name, consumer.func.name}
                consumer_vars = {v.name for v in consumer.func.variables}
                if ctx.func.reduction is not None:
                    reason = ("a reduction accumulator materializes whole; "
                              "compute_at is not supported")
                elif consumer.func.reduction is not None:
                    reason = (f"consumer {consumer.stage.name} is a "
                              "reduction stage (its RDom sweeps the whole "
                              "input domain)")
                elif anchor is None or anchor[0] not in consumer_names:
                    reason = (f"compute_at consumer {anchor and anchor[0]!r} "
                              f"is not the consuming stage "
                              f"{consumer.stage.name!r}")
                elif anchor[1] not in consumer_vars:
                    reason = (f"anchor var {anchor[1]!r} is not a pure "
                              f"variable of {consumer.stage.name}")
                elif not consumer.footprint.stencil:
                    reason = ("the consumer's taps are not an axis-aligned "
                              "shifted window; bounds not inferable")
                else:
                    level = "at"
            ctx.level = level
            ctx.decision = StageDecision(
                name=ctx.stage.name, func_name=ctx.func.name, level=level,
                anchor=anchor if level == "at" else None,
                requested=requested,
                demoted_reason=reason)
        # Record the consumer footprint on each producer's decision (that is
        # the ghost zone its materialization carries).
        for index, ctx in enumerate(contexts[:-1]):
            consumer = contexts[index + 1]
            if consumer.footprint.stencil:
                ctx.decision.footprint = list(zip(consumer.footprint.lo,
                                                  consumer.footprint.hi))
        return contexts

    # -- driver --------------------------------------------------------------

    @staticmethod
    def _group(contexts: list[_StageCtx]) -> list[tuple[_StageCtx, list[_StageCtx]]]:
        """Group stages: each group is (consumer, [compute_at chain into it])."""
        groups: list[tuple[_StageCtx, list[_StageCtx]]] = []
        chain: list[_StageCtx] = []
        for ctx in contexts:
            if ctx.level == "at":
                chain.append(ctx)
            else:
                groups.append((ctx, chain))
                chain = []
        return groups

    def _loop_extremes(self, consumer: _StageCtx) -> tuple[list[int], list[int]]:
        """Smallest first-tile and last-tile extents per axis of the
        consumer's loop nest (the worst cases for border regions)."""
        rank = self.rank
        schedule = consumer.func.schedule
        first = list(self.frame_shape)
        last = list(self.frame_shape)

        def split(axis: int, step: int) -> None:
            dim = self.frame_shape[axis]
            first[axis] = min(step, dim)
            remainder = dim % step
            last[axis] = remainder if (remainder and dim > step) \
                else min(step, dim)

        if schedule.tile_x > 0 and schedule.tile_y > 0 and rank >= 2:
            split(rank - 2, schedule.tile_y)
            split(rank - 1, schedule.tile_x)
        else:
            split(rank - 2 if rank >= 2 else 0, STRIP_HEIGHT)
        return first, last

    def _demote_unsafe_regions(self, contexts: list[_StageCtx]) -> None:
        """Demote compute_at stages whose required region can fall entirely
        outside the frame for some border tile.

        The clamped-region machinery handles regions *straddling* the frame
        edge; a region with no in-domain point at all (a one-sided footprint
        at least as deep as a border tile) has nothing to snap to inside its
        own allocation, so those geometries take the full-frame path instead.
        The check is static: frame shape, tile extents and accumulated
        footprints are all known at lowering time.
        """
        while True:
            demoted = False
            for consumer, chain in self._group(contexts):
                if not chain:
                    continue
                first, last = self._loop_extremes(consumer)
                acc_lo = [0] * self.rank
                acc_hi = [0] * self.rank
                readers = chain[1:] + [consumer]
                for ctx, reader in zip(reversed(chain), reversed(readers)):
                    fp = reader.footprint
                    acc_lo = [a + fp.lo[i] for i, a in enumerate(acc_lo)]
                    acc_hi = [a + fp.hi[i] for i, a in enumerate(acc_hi)]
                    bad = next((axis for axis in range(self.rank)
                                if first[axis] - 1 + acc_hi[axis] < 0
                                or acc_lo[axis] > last[axis] - 1), None)
                    if bad is None:
                        continue
                    ctx.level = "root"
                    ctx.decision.level = "root"
                    ctx.decision.anchor = None
                    ctx.decision.demoted_reason = (
                        f"a border tile of {consumer.stage.name} can require "
                        f"a region of {ctx.stage.name} entirely outside the "
                        f"frame (accumulated footprint "
                        f"[{acc_lo[bad]},{acc_hi[bad]}] on axis {bad}, tile "
                        f"extents down to {min(first[bad], last[bad])})")
                    demoted = True
                    break
                if demoted:
                    break                  # regroup and re-check from scratch
            if not demoted:
                return

    def lower(self) -> LoweredPipeline:
        contexts = self._contexts()
        self._demote_unsafe_regions(contexts)
        frame_input = contexts[0].stage.input_name

        # Buffer naming: frame input feeds stage 0; every root stage gets a
        # full-frame intermediate; compute_at stages get per-region scratch.
        for index, ctx in enumerate(contexts):
            ctx.input_buffer = frame_input if index == 0 \
                else contexts[index - 1].output_buffer
            if ctx.level == "output":
                ctx.output_buffer = f"{ctx.stage.name}.out"
            elif ctx.level == "root":
                ctx.output_buffer = f"{ctx.stage.name}.root#{index}"
            else:
                ctx.output_buffer = f"{ctx.stage.name}.scratch#{index}"
            ctx.decision.buffer = ctx.output_buffer

        groups = self._group(contexts)

        # Build back to front so each root group wraps everything after it.
        stmt: Optional[Stmt] = None
        for consumer, at_chain in reversed(groups):
            group_stmt = self._lower_group(consumer, at_chain)
            if stmt is None:
                stmt = group_stmt
            else:
                stmt = Allocate(
                    consumer.output_buffer, consumer.func.dtype,
                    tuple(self.frame_shape),
                    Block([ProducerConsumer(consumer.stage.name,
                                            group_stmt, stmt)]))
        return LoweredPipeline(
            stmt=stmt, input_name=frame_input,
            output=contexts[-1].output_buffer,
            frame_shape=self.frame_shape,
            out_dtype=contexts[-1].func.dtype,
            decisions=[ctx.decision for ctx in contexts])

    # -- group lowering ------------------------------------------------------

    # -- reduction stages ----------------------------------------------------

    def _check_reduction_lowerable(self, stage, func: Func,
                                   pad_before: Sequence[int]) -> None:
        """Raise :class:`PipelineLoweringError` for reduction geometries the
        loop-nest IR cannot express (the legacy path still realizes them)."""
        rdom = func.reduction[0]
        if rdom.source != stage.input_name:
            raise PipelineLoweringError(
                f"reduction stage {stage.name}: RDom ranges over "
                f"{rdom.source!r}, not the stage input {stage.input_name!r}")
        if rdom.dimensions != self.rank:
            raise PipelineLoweringError(
                f"reduction stage {stage.name}: RDom rank {rdom.dimensions} "
                f"!= frame rank {self.rank}")
        if any(pad != 0 for pad in pad_before) or stage.pad != 0 \
                or stage.pad_width is not None:
            raise PipelineLoweringError(
                f"reduction stage {stage.name}: padded inputs would change "
                "the RDom extents")

    def _reduction_update_func(self, ctx: _StageCtx) -> Func:
        """The reduction update retargeted to the lowered buffer names.

        Taps into the stage input read the resolved input buffer; the
        accumulator self-reference follows the clone's name (the executor
        binds the target buffer under it, exactly as the whole-Func
        realizers bind the output).  The name is deterministic per stage so
        the compiled backend's kernel cache hits across frames.
        """
        rdom, index_exprs, update = ctx.func.reduction
        name = f"{ctx.stage.name}#{ctx.index}.update"
        mapping = {}
        if ctx.stage.input_name != ctx.input_buffer:
            mapping[ctx.stage.input_name] = ctx.input_buffer
        if ctx.func.name != name:
            mapping[ctx.func.name] = name
        clone = Func(name=name, variables=list(ctx.func.variables),
                     value=None, dtype=ctx.func.dtype,
                     inputs=list(ctx.func.inputs),
                     schedule=Schedule(fuse_producers=False,
                                       vectorize=ctx.func.schedule.vectorize))
        clone.reduction = (
            RDom(rdom.name, source=ctx.input_buffer,
                 dimensions=rdom.dimensions),
            [canonicalize(_rename_buffers(e, mapping)) for e in index_exprs],
            canonicalize(_rename_buffers(update, mapping)))
        return clone

    def _lower_reduction(self, ctx: _StageCtx) -> Stmt:
        """Init store + update sweep(s) for one reduction stage.

        Associative accumulations scheduled ``parallel`` take the two-phase
        form: a parallel loop fills one private partial accumulator per RDom
        row strip (``Allocate`` with an identity fill), then a serial merge
        loop folds the partials into the initialized output — bit-identical
        to the serial whole-domain sweep because wrapping integer addition
        is associative and commutative.  Everything else (non-associative
        updates, serial schedules, single-strip domains) keeps the one
        serialized whole-domain ``ReduceLoop`` the oracle runs.
        """
        rank = self.rank
        func = ctx.func
        init_value = func.value if func.value is not None else Const(0, INT32)
        init_func = Func(name=func.name, variables=list(func.variables),
                         value=init_value, dtype=func.dtype,
                         inputs=list(func.inputs))
        init_ctx = _StageCtx(
            index=ctx.index, stage=ctx.stage, func=init_func,
            input_buffer=ctx.input_buffer, output_buffer=ctx.output_buffer,
            pad_before=ctx.pad_before,
            footprint=_stage_footprint(init_func, ctx.stage.input_name,
                                       ctx.pad_before),
            level=ctx.level, decision=ctx.decision)
        init = self._store_global(init_ctx, [0] * rank,
                                  list(self.frame_shape), _Lets(),
                                  static=True)

        update_func = self._reduction_update_func(ctx)
        sweep, description = _reduction_sweep(
            func, update_func, ctx.output_buffer,
            f"{ctx.stage.name}.partials#{ctx.index}",
            self.frame_shape, self.frame_shape,
            ctx.stage.name, f"s{ctx.index}.r")
        ctx.decision.reduction = description
        return Block([init, sweep])

    # -- pure-stage group lowering -------------------------------------------

    def _lower_group(self, consumer: _StageCtx,
                     chain: list[_StageCtx]) -> Stmt:
        if consumer.func.reduction is not None:
            return self._lower_reduction(consumer)
        schedule = consumer.func.schedule
        rank = self.rank
        tiled = (schedule.tile_x > 0 and schedule.tile_y > 0 and rank >= 2)
        prefix = f"s{consumer.index}"

        if tiled:
            tile_w, tile_h = schedule.tile_x, schedule.tile_y
            height = self.frame_shape[rank - 2]
            width = self.frame_shape[rank - 1]
            vy = IRVar(f"{consumer.stage.name}.tile_y")
            vx = IRVar(f"{consumer.stage.name}.tile_x")
            lets = _Lets()
            oy = lets.bind(f"{prefix}.oy", _mul(vy, tile_h))
            ox = lets.bind(f"{prefix}.ox", _mul(vx, tile_w))
            ey = lets.bind(f"{prefix}.ey", _min_(tile_h, _sub(height, oy)))
            ex = lets.bind(f"{prefix}.ex", _min_(tile_w, _sub(width, ox)))
            origin = [0] * (rank - 2) + [oy, ox]
            extent = list(self.frame_shape[:rank - 2]) + [ey, ex]
            static_extent = (list(self.frame_shape[:rank - 2])
                             + [min(tile_h, height), min(tile_w, width)])
            body = lets.wrap(self._lower_region(
                consumer, chain, origin, extent, lets, static_extent))
            loops = For(vx.name, 0, -(-width // tile_w), body)
            kind = "parallel" if (schedule.parallel
                                  and consumer.func.parallel_unsupported_reason()
                                  is None) else "serial"
            return For(vy.name, 0, -(-height // tile_h), loops, kind=kind)

        if chain:
            # Untiled consumer with compute_at producers: row strips
            # (Halide's compute_at(f, y)).
            axis = rank - 2 if rank >= 2 else 0
            extent_axis = self.frame_shape[axis]
            var = IRVar(f"{consumer.stage.name}.strip")
            lets = _Lets()
            o_strip = lets.bind(f"{prefix}.oy", _mul(var, STRIP_HEIGHT))
            origin = [0] * rank
            extent = list(self.frame_shape)
            static_extent = list(self.frame_shape)
            origin[axis] = o_strip
            extent[axis] = lets.bind(
                f"{prefix}.ey", _min_(STRIP_HEIGHT, _sub(extent_axis, o_strip)))
            static_extent[axis] = min(STRIP_HEIGHT, extent_axis)
            body = lets.wrap(self._lower_region(
                consumer, chain, origin, extent, lets, static_extent))
            return For(var.name, 0, -(-extent_axis // STRIP_HEIGHT), body)

        # Whole-frame store: split borders statically.
        return self._lower_region(consumer, chain,
                                  [0] * rank, list(self.frame_shape),
                                  _Lets(), list(self.frame_shape), static=True)

    def _lower_region(self, consumer: _StageCtx, chain: list[_StageCtx],
                      origin: list, extent: list, lets: "_Lets",
                      static_extent: list, static: bool = False) -> Stmt:
        """The body computing ``consumer`` over one region, producing its
        compute_at chain into scratch buffers first."""
        if not chain:
            return self._store_global(consumer, origin, extent, lets,
                                      static=static)

        # Bounds inference: required regions consumer -> producer, unclamped
        # (the unclamped base keeps scratch offsets lowering-time constants).
        regions: dict[int, tuple[list, list]] = {}
        cur_origin, cur_extent = list(origin), list(extent)
        cur_static = list(static_extent)
        consumers = chain[1:] + [consumer]
        for ctx, reader in zip(reversed(chain), reversed(consumers)):
            fp = reader.footprint
            prefix = f"s{ctx.index}"
            cur_origin = [lets.bind(f"{prefix}.ro{a}", _add(o, fp.lo[a]))
                          for a, o in enumerate(cur_origin)]
            cur_extent = [lets.bind(f"{prefix}.re{a}",
                                    _add(e, fp.hi[a] - fp.lo[a]))
                          for a, e in enumerate(cur_extent)]
            cur_static = [s + (fp.hi[a] - fp.lo[a])
                          for a, s in enumerate(cur_static)]
            regions[ctx.index] = (list(cur_origin), list(cur_extent))
            ctx.decision.scratch_extent = tuple(cur_static)

        stmt: Stmt = self._store_consume(consumer, chain[-1], origin, extent)
        for position in range(len(chain) - 1, -1, -1):
            ctx = chain[position]
            r_origin, r_extent = regions[ctx.index]
            if position == 0:
                produce = self._produce_global(ctx, r_origin, r_extent, lets)
            else:
                produce = self._produce_local(ctx, r_origin, r_extent, lets)
            stmt = ProducerConsumer(ctx.stage.name, produce, stmt)
        for ctx in reversed(chain):
            r_origin, r_extent = regions[ctx.index]
            stmt = Allocate(ctx.output_buffer, ctx.func.dtype,
                            tuple(r_extent), stmt)
        return stmt

    # -- stores --------------------------------------------------------------

    def _clamped_region(self, ctx: _StageCtx, origin: list, extent: list,
                        lets: "_Lets"):
        """Clamp a required region to the stage's domain (the frame).

        Returns (clamped origin, clamped extent, scratch offset) — the
        clamped region is never empty (it snaps to the nearest in-domain
        row/column, whose values the ghost zone replicates).
        """
        prefix = f"s{ctx.index}"
        c_origin, c_extent, offset = [], [], []
        for axis in range(self.rank):
            dim = self.frame_shape[axis]
            lo = lets.bind(f"{prefix}.co{axis}",
                           _clamp(origin[axis], 0, dim - 1))
            hi = lets.bind(
                f"{prefix}.chi{axis}",
                _clamp(_sub(_add(origin[axis], extent[axis]), 1), 0, dim - 1))
            c_origin.append(lo)
            c_extent.append(lets.bind(f"{prefix}.ce{axis}",
                                      _add(_sub(hi, lo), 1)))
            offset.append(lets.bind(f"{prefix}.coff{axis}",
                                    _sub(lo, origin[axis])))
        return c_origin, c_extent, offset

    def _taps_interior_cond(self, fp: _Footprint, origin: list,
                            extent: list) -> Optional[Expr]:
        """Loop-var condition: every tap of this store stays in the input."""
        cond: Optional[Expr] = None
        for axis in range(self.rank):
            dim = self.frame_shape[axis]
            if fp.lo[axis] < 0:
                term = _add(origin[axis], fp.lo[axis])
                cond = _and_(cond, BinOp(Op.GE, _e(term), Const(0, INT32), INT32))
            if fp.hi[axis] > 0:
                term = _add(_add(origin[axis], extent[axis]), fp.hi[axis])
                cond = _and_(cond, BinOp(Op.LE, _e(term), Const(dim, INT32), INT32))
        return cond

    def _store_func(self, ctx: _StageCtx, expr: Expr, variant: str) -> Func:
        """A pure Func wrapping one store's rewritten expression.

        The name is deterministic per (stage, variant) so the compiled
        backend's kernel cache hits across tiles and across lowerings.
        """
        return Func(name=f"{ctx.stage.name}#{ctx.index}.{variant}",
                    variables=list(ctx.func.variables),
                    value=canonicalize(expr), dtype=ctx.func.dtype,
                    inputs=list(ctx.func.inputs),
                    schedule=Schedule(fuse_producers=False,
                                      vectorize=ctx.func.schedule.vectorize))

    def _variant_funcs(self, ctx: _StageCtx):
        """A memoizing ``func_for(variant)`` over the two store rewrites
        (pure-shift interior vs clamped border) of one stage."""
        cache: dict[str, Func] = {}

        def func_for(variant: str) -> Func:
            func = cache.get(variant)
            if func is None:
                expr = self._shift_expr(ctx) if variant == "interior" \
                    else self._clamped_expr(ctx)
                func = self._store_func(ctx, expr, variant)
                cache[variant] = func
            return func

        return func_for

    def _shift_expr(self, ctx: _StageCtx) -> Expr:
        """Taps rewritten to pure shifts into the (unpadded) input buffer."""
        delta = [-ctx.pad_before[self.rank - 1 - p] for p in range(self.rank)]
        return _retarget(ctx.func.value, ctx.stage.input_name,
                         ctx.input_buffer, delta_by_pos=delta)

    def _clamped_expr(self, ctx: _StageCtx) -> Expr:
        """Taps rewritten to clamped (edge-replicating) loads."""
        clamp = []
        for position in range(self.rank):
            axis = self.rank - 1 - position
            clamp.append((ctx.pad_before[axis], 0, self.frame_shape[axis] - 1))
        return _retarget(ctx.func.value, ctx.stage.input_name,
                         ctx.input_buffer, clamp_by_pos=clamp)

    def _partitioned_stores(self, ctx: _StageCtx, origin: list, extent: list,
                            make_store, lets: "_Lets", prefix: str) -> Stmt:
        """Loop partitioning for one region store with a stencil footprint.

        Fast path: when every tap of the whole region stays inside the input
        (a runtime condition over the loop variables), a single pure-shift
        store runs.  Otherwise the region splits into clamped border slabs
        (thin: only the rows/columns whose taps actually leave the frame)
        plus a pure-shift interior sub-store — so even a full-width strip
        pays the gather cost only on its border rows.  ``make_store(origin,
        extent, variant, label)`` builds the store for one piece.
        """
        fp = ctx.footprint
        hi_index = [lets.bind(f"{prefix}.hi{a}",
                              _sub(_add(origin[a], extent[a]), 1))
                    for a in range(self.rank)]
        interior_lo = [
            lets.bind(f"{prefix}.ilo{a}", _max_(origin[a], -fp.lo[a]))
            if fp.lo[a] < 0 else origin[a]
            for a in range(self.rank)]
        interior_hi = [
            lets.bind(f"{prefix}.ihi{a}",
                      _min_(hi_index[a], self.frame_shape[a] - 1 - fp.hi[a]))
            if fp.hi[a] > 0 else hi_index[a]
            for a in range(self.rank)]

        pieces: list[Stmt] = []
        for axis in range(self.rank):
            def slab(lo_axis, extent_axis, label):
                o, e = [], []
                for a in range(self.rank):
                    if a < axis:
                        o.append(interior_lo[a])
                        e.append(_add(_sub(interior_hi[a], interior_lo[a]), 1))
                    elif a == axis:
                        o.append(lo_axis)
                        e.append(extent_axis)
                    else:
                        o.append(origin[a])
                        e.append(extent[a])
                return make_store(o, e, "clamped", label)

            if fp.lo[axis] < 0:
                pieces.append(slab(origin[axis],
                                   _sub(interior_lo[axis], origin[axis]),
                                   f"border-lo{axis}"))
            if fp.hi[axis] > 0:
                pieces.append(slab(_add(interior_hi[axis], 1),
                                   _sub(hi_index[axis], interior_hi[axis]),
                                   f"border-hi{axis}"))
        pieces.append(make_store(
            interior_lo,
            [_add(_sub(interior_hi[a], interior_lo[a]), 1)
             for a in range(self.rank)],
            "interior", "interior"))

        cond = self._taps_interior_cond(fp, origin, extent)
        whole = make_store(origin, extent, "interior", "interior-whole")
        if cond is None:
            return whole
        return IfThenElse(cond, whole, Block(pieces))

    def _store_global(self, ctx: _StageCtx, origin: list, extent: list,
                      lets: "_Lets", static: bool = False) -> Stmt:
        """Store a stage over a region of its full-frame output buffer,
        reading its (full-frame) input in global coordinates."""
        fp = ctx.footprint
        target = ctx.output_buffer
        func_for = self._variant_funcs(ctx)

        def make_store(o, e, variant, label):
            return Store(buffer=target, offset=tuple(o), extent=tuple(e),
                         func=func_for(variant), eval_origin=tuple(o),
                         label=label)

        if not fp.reads_input:
            return make_store(origin, extent, "interior", "pointwise")
        if not fp.stencil:
            return make_store(origin, extent, "clamped", "complex-taps")
        if all(fp.lo[a] == 0 and fp.hi[a] == 0 for a in range(self.rank)):
            # Every tap reads exactly the output point: never out of bounds.
            return make_store(origin, extent, "interior", "pointwise")
        if not static:
            return self._partitioned_stores(ctx, origin, extent, make_store,
                                            lets, f"s{ctx.index}.g")

        # Static whole-frame split: interior block + clamped border slabs,
        # with all the bounds folded to constants at lowering time.
        interior_lo = [max(0, -fp.lo[a]) for a in range(self.rank)]
        interior_hi = [min(self.frame_shape[a] - 1,
                           self.frame_shape[a] - 1 - fp.hi[a])
                       for a in range(self.rank)]
        if any(interior_hi[a] < interior_lo[a] for a in range(self.rank)):
            return make_store(origin, extent, "clamped", "border-only")
        stmts: list[Stmt] = []
        for axis in range(self.rank):
            def slab(lo_axis, hi_axis, label):
                o, e = [], []
                for a in range(self.rank):
                    if a < axis:
                        o.append(interior_lo[a])
                        e.append(interior_hi[a] - interior_lo[a] + 1)
                    elif a == axis:
                        o.append(lo_axis)
                        e.append(hi_axis - lo_axis + 1)
                    else:
                        o.append(0)
                        e.append(self.frame_shape[a])
                if any(ext <= 0 for ext in e):
                    return None
                return make_store(o, e, "clamped", label)

            before = slab(0, interior_lo[axis] - 1, f"border-lo{axis}")
            after = slab(interior_hi[axis] + 1, self.frame_shape[axis] - 1,
                         f"border-hi{axis}")
            for piece in (before, after):
                if piece is not None:
                    stmts.append(piece)
        stmts.append(make_store(
            interior_lo,
            [interior_hi[a] - interior_lo[a] + 1 for a in range(self.rank)],
            "interior", "interior"))
        return Block(stmts)

    def _produce_global(self, ctx: _StageCtx, origin: list, extent: list,
                        lets: "_Lets") -> Stmt:
        """Produce a compute_at stage whose input is a full-frame buffer.

        Evaluates over the region clamped to the frame (global coordinates),
        then edge-replicates the ghost rows the unclamped region wanted.
        """
        fp = ctx.footprint
        c_origin, c_extent, offset = self._clamped_region(ctx, origin, extent,
                                                          lets)
        func_for = self._variant_funcs(ctx)

        def make_store(o, e, variant, label):
            # Scratch-relative write position: global minus the unclamped
            # region base the allocation is aligned to.
            scratch_offset = tuple(_sub(o[a], origin[a])
                                   for a in range(self.rank))
            return Store(buffer=ctx.output_buffer, offset=scratch_offset,
                         extent=tuple(e), func=func_for(variant),
                         eval_origin=tuple(o), label=label)

        if not fp.reads_input:
            body: Stmt = make_store(c_origin, c_extent, "interior", "produce")
        elif not fp.stencil:
            body = make_store(c_origin, c_extent, "clamped",
                              "produce-complex")
        elif all(fp.lo[a] == 0 and fp.hi[a] == 0 for a in range(self.rank)):
            body = make_store(c_origin, c_extent, "interior", "produce")
        else:
            body = self._partitioned_stores(ctx, c_origin, c_extent,
                                            make_store, lets,
                                            f"s{ctx.index}.p")
        return Block([body, PadEdge(ctx.output_buffer, tuple(offset),
                                    tuple(c_extent))])

    def _produce_local(self, ctx: _StageCtx, origin: list, extent: list,
                       lets: "_Lets") -> Stmt:
        """Produce a compute_at stage whose input is another scratch buffer.

        Evaluation runs in coordinates local to this stage's unclamped
        region base; taps into the upstream scratch become constant shifts,
        and any direct use of the loop variables is corrected back to global
        coordinates through per-tile Params.
        """
        fp = ctx.footprint
        c_origin, c_extent, offset = self._clamped_region(ctx, origin, extent,
                                                          lets)
        # Tap rewrite: global tap (x_global + eff) lands in upstream scratch
        # at (x_global + eff - upstream_base); with x evaluated relative to
        # this region's base, the shift is eff - fp.lo — a constant.
        delta = []
        var_params: dict[str, Param] = {}
        param_candidates: dict[str, object] = {}
        for position in range(self.rank):
            axis = self.rank - 1 - position
            delta.append(-ctx.pad_before[axis] - fp.lo[axis])
        for position, var in enumerate(ctx.func.variables):
            axis = self.rank - 1 - position
            name = f"_lower_base{ctx.index}_a{axis}"
            var_params[var.name] = Param(name, 0, INT32)
            param_candidates[name] = origin[axis]
        expr = _retarget(ctx.func.value, ctx.stage.input_name,
                         ctx.input_buffer, delta_by_pos=delta,
                         var_params=var_params)
        params = _used_params(expr, param_candidates)
        # Evaluation origin: the clamped region start, relative to the
        # unclamped base (scratch-local coordinates, equal to `offset`).
        store = Store(buffer=ctx.output_buffer, offset=tuple(offset),
                      extent=tuple(c_extent),
                      func=self._store_func(ctx, expr, "local"),
                      eval_origin=tuple(offset),
                      param_exprs=params, label="produce-local")
        return Block([store, PadEdge(ctx.output_buffer, tuple(offset),
                                     tuple(c_extent))])

    def _store_consume(self, consumer: _StageCtx, producer: _StageCtx,
                       origin: list, extent: list) -> Stmt:
        """The consumer's store, reading its producer's scratch buffer in
        region-local coordinates."""
        fp = consumer.footprint
        delta = []
        var_params: dict[str, Param] = {}
        param_candidates: dict[str, object] = {}
        for position in range(self.rank):
            axis = self.rank - 1 - position
            delta.append(-consumer.pad_before[axis] - fp.lo[axis])
        for position, var in enumerate(consumer.func.variables):
            axis = self.rank - 1 - position
            name = f"_lower_base{consumer.index}_a{axis}"
            var_params[var.name] = Param(name, 0, INT32)
            param_candidates[name] = origin[axis]
        expr = _retarget(consumer.func.value, consumer.stage.input_name,
                         producer.output_buffer, delta_by_pos=delta,
                         var_params=var_params)
        params = _used_params(expr, param_candidates)
        return Store(buffer=consumer.output_buffer, offset=tuple(origin),
                     extent=tuple(extent),
                     func=self._store_func(consumer, expr, "consume"),
                     eval_origin=tuple([0] * self.rank),
                     param_exprs=params, label="consume")


def lower_reduction_func(func: Func, out_shape: Sequence[int],
                         source_shape: Sequence[int]) -> Stmt:
    """A standalone lowered form of one reduction Func, for inspection.

    Returns the init / update / merge phases of the given reduction as a
    ``Stmt`` tree over an accumulator of ``out_shape`` swept from a source
    of ``source_shape`` (both NumPy axis order) — what ``python -m repro
    run --explain`` prints for lifted table kernels.  Unlike
    :func:`lower_pipeline` this does not require the reduction to be
    rank-preserving, so a 256-bin histogram over a 2-D frame lowers here
    even though it cannot join a frame-shaped pipeline.  Buffer names match
    the whole-Func realizers' bindings (``rdom.source`` for the source, the
    Func's own name for the accumulator self-reference).
    """
    if func.reduction is None:
        raise PipelineLoweringError(f"{func.name} has no reduction update")
    out_shape = tuple(int(e) for e in out_shape)
    source_shape = tuple(int(e) for e in source_shape)
    out_buffer = f"{func.name}.out"
    out_rank = len(out_shape)
    init_value = func.value if func.value is not None else Const(0, INT32)
    init_func = Func(name=f"{func.name}.init",
                     variables=list(func.variables), value=init_value,
                     dtype=func.dtype, inputs=list(func.inputs),
                     schedule=Schedule(fuse_producers=False,
                                       vectorize=func.schedule.vectorize))
    init = Store(buffer=out_buffer, offset=(0,) * out_rank, extent=out_shape,
                 func=init_func, eval_origin=(0,) * out_rank, label="init")
    sweep, _description = _reduction_sweep(
        func, func, out_buffer, f"{func.name}.partials",
        out_shape, source_shape, func.name, f"{func.name}.r")
    return Block([init, sweep])


def lower_pipeline(pipeline, frame_shape: Sequence[int]) -> LoweredPipeline:
    """Lower a scheduled :class:`FuncPipeline` over a frame of this shape.

    ``frame_shape`` is in NumPy (outermost-first) order.  Raises
    :class:`PipelineLoweringError` when the pipeline cannot be expressed in
    the loop-nest IR (reduction stages); the caller falls back to the legacy
    stage-by-stage path.
    """
    return _Lowerer(pipeline, tuple(frame_shape)).lower()
