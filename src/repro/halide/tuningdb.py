"""Persistent tuning database: measured schedules in the artifact store.

Autotuning wall-clock-times candidate schedules, which is a per-process tax
the paper's OpenTuner workflow pays once and amortizes.  This module gives
the repo the same amortization: every tuning session's winner is persisted
in the :class:`~repro.store.store.ArtifactStore` under a dedicated
``tuning/`` stage, keyed by

* the **workload identity** — for pipelines, the schedule-stripped
  ``FuncPipeline._lowering_key`` (stage names, expressions, padding, dtypes
  and the frame shape; the *schedules* are the record's payload, so they are
  excluded from the key), and for single Funcs the expression/reduction
  structure plus the realization shape;
* the **machine fingerprint** — architecture, OS and CPU count.  Timings do
  not transfer across machines, so a foreign record must be a clean miss,
  never a wrong-schedule hit;
* ``TUNING_VERSION`` — bumped when the schedule search space or the record
  layout changes incompatibly.

A :class:`TuningRecord` survives pickle round-trips and store restarts like
any other artifact; a corrupt blob is quarantined by the store itself
(``<root>/quarantine/``) and reads as a miss, so warm-start callers fall
back to live tuning instead of failing.  :func:`warm_start_pipeline` /
:func:`warm_start_func` apply the best known schedules at zero timing cost
— this is what lets :class:`~repro.halide.serve.PipelineServer` and
``serve_lifted`` skip candidate evaluation entirely after one ``python -m
repro tune`` run.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass, field, replace
from typing import Optional

from ..store import ArtifactKey
from .func import Func, Schedule

#: Store stage directory holding tuning records (not a lift stage: lift
#: artifacts are keyed by app fingerprint + code fingerprint, tuning records
#: by workload + machine — see module docstring).
TUNING_STAGE = "tuning"

#: Bump to invalidate every stored tuning record (search-space or record
#: layout changes).  v2: fingerprint carries the execution backend, so
#: native and NumPy records never cross-contaminate.
TUNING_VERSION = 2


def machine_fingerprint(engine: str | None = None) -> dict:
    """What makes one machine's timings non-transferable to another.

    CPU count is included because the winning schedule's ``parallel`` flag
    and tile sizes depend on the pool width available when it was measured.
    The execution backend is part of the fingerprint for the same reason:
    the native backend's per-tile dispatch is orders of magnitude cheaper
    than the NumPy engines', so a schedule tuned on one is wrong for the
    other.  ``engine=None`` means the process-wide default engine.
    """
    from .realize import get_default_engine
    return {
        "machine": platform.machine(),
        "system": platform.system(),
        "cpus": int(os.cpu_count() or 1),
        "backend": engine if engine is not None else get_default_engine(),
    }


def _canonical(value):
    """A JSON-stable view of a workload key.

    Tuples become lists, mappings are sorted by stringified key, and
    non-JSON leaves (DTypes, IR key atoms) become their ``str`` form —
    deterministic because every leaf's ``__str__`` is content-derived, never
    an ``id()``-bearing ``repr``.
    """
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(val)
                for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (str, int, float)):
        return value
    return str(value)


def tuning_key(workload, machine: dict | None = None) -> ArtifactKey:
    """The content-addressed store key of one (workload, machine) pair."""
    payload = json.dumps({
        "stage": TUNING_STAGE,
        "version": TUNING_VERSION,
        "machine": _canonical(machine if machine is not None
                              else machine_fingerprint()),
        "workload": _canonical(workload),
    }, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode()).hexdigest()
    return ArtifactKey(stage=TUNING_STAGE, digest=digest, payload=payload)


def tuning_manifest_is_current(manifest: dict) -> bool:
    """Is a stored manifest a live tuning record (for ``cache prune``)?

    Tuning records carry no lift-stage version chain, so the lift-side
    :func:`~repro.store.keys.manifest_is_current` rejects them; this is
    their own currency test.
    """
    key = manifest.get("key")
    return (isinstance(key, dict)
            and key.get("stage") == TUNING_STAGE
            and key.get("version") == TUNING_VERSION)


def pipeline_workload(pipeline, frame_shape) -> tuple:
    """Workload identity of a FuncPipeline at one frame shape.

    Uses the schedule-stripped lowering key: the stored record *is* the
    schedule assignment, so a lookup must succeed whatever schedules the
    pipeline currently carries.
    """
    return ("pipeline",) + pipeline._lowering_key(
        tuple(int(d) for d in frame_shape), include_schedules=False)


def func_workload(func: Func, np_shape) -> tuple:
    """Workload identity of a single Func realized at one output shape.

    ``np_shape`` is the output shape in NumPy (outermost-first) order;
    callers holding the x-first ``realize`` shape reverse it first so the
    tune-time and serve-time keys agree.
    """
    reduction_key = None
    if func.reduction is not None:
        rdom, index_exprs, update = func.reduction
        reduction_key = (rdom.name, rdom.source, rdom.dimensions,
                         tuple(e.cached_key() for e in index_exprs),
                         update.cached_key())
    return ("func", func.name, str(func.dtype),
            func.value.cached_key() if func.value is not None else None,
            reduction_key,
            tuple(int(d) for d in np_shape))


@dataclass
class TuningRecord:
    """One tuning session's outcome, as persisted in the store.

    ``schedules`` holds one :class:`Schedule` per pipeline stage (a single
    element for Func workloads); ``history`` pairs each timed candidate's
    per-stage ``describe()`` strings with its measured best-of-N seconds.
    """

    schedules: list[Schedule]
    best_time: float
    evaluations: int
    history: list = field(default_factory=list)
    machine: dict = field(default_factory=machine_fingerprint)
    pool_width: int = 1
    engine: str = "default"
    created: str = ""

    def valid_for(self, stage_count: int) -> bool:
        """Defensive shape check before applying a deserialized record."""
        return (isinstance(self.schedules, list)
                and len(self.schedules) == stage_count
                and all(isinstance(s, Schedule) for s in self.schedules))


class TuningDatabase:
    """Lookup/record interface over the ``tuning/`` store stage."""

    def __init__(self, store=None) -> None:
        if store is None:
            from ..store import default_store

            store = default_store()
        self.store = store

    def lookup(self, workload, engine: str | None = None
               ) -> Optional[TuningRecord]:
        """The stored record for this workload on this machine/backend.

        ``engine`` selects which backend's records to consult (default: the
        process-wide default engine — the fingerprint includes it, so
        native and NumPy records never cross-contaminate).  A corrupt blob
        was already quarantined by the store's own read path; a well-formed
        blob that is not a :class:`TuningRecord` (a foreign artifact under
        our digest — effectively impossible, but cheap to guard) is
        likewise a miss.  Either way the caller tunes live.
        """
        artifact = self.store.get(
            tuning_key(workload, machine_fingerprint(engine)))
        if not isinstance(artifact, TuningRecord):
            return None
        return artifact

    def record(self, workload, record: TuningRecord,
               engine: str | None = None) -> None:
        if not record.created:
            record.created = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        self.store.put(
            tuning_key(workload, machine_fingerprint(engine)), record)

    def entries(self) -> list[dict]:
        """Every tuning manifest in the store (any machine, any version)."""
        return [manifest for manifest in self.store.entries()
                if manifest.get("stage") == TUNING_STAGE]

    def evict(self) -> int:
        """Delete every tuning record; returns how many blobs were removed."""
        stage_root = self.store.root / TUNING_STAGE
        removed = 0
        if not stage_root.exists():
            return removed
        for path in list(stage_root.iterdir()):
            if path.suffix not in (".pkl", ".json"):
                continue
            if path.suffix == ".pkl":
                removed += 1
            try:
                path.unlink()
            except OSError:
                pass
        return removed


# ---------------------------------------------------------------------------
# Warm start: apply the best known schedules at zero timing cost
# ---------------------------------------------------------------------------


def warm_start_pipeline(pipeline, frame_shape, store=None
                        ) -> Optional[TuningRecord]:
    """Apply this machine's best known schedules to ``pipeline``, if any.

    Returns the applied record, or None on a miss (no record, foreign
    machine, corrupt blob, wrong stage count).  Schedules are applied as
    fresh copies so later mutation of the pipeline never rewrites the
    record's objects.  Never raises: a broken store must degrade to live
    tuning, not break serving.
    """
    from .autotune import tuner_stats

    record = None
    try:
        db = TuningDatabase(store)
        record = db.lookup(pipeline_workload(pipeline, frame_shape))
    except Exception:
        record = None
    if record is None or not record.valid_for(len(pipeline.stages)):
        tuner_stats["warm_start_misses"] += 1
        return None
    for stage, schedule in zip(pipeline.stages, record.schedules):
        stage.func.schedule = replace(schedule)
    tuner_stats["warm_start_hits"] += 1
    return record


def warm_start_func(func: Func, np_shape, store=None) -> Optional[TuningRecord]:
    """Single-Func analogue of :func:`warm_start_pipeline`."""
    from .autotune import tuner_stats

    record = None
    try:
        db = TuningDatabase(store)
        record = db.lookup(func_workload(func, np_shape))
    except Exception:
        record = None
    if record is None or not record.valid_for(1):
        tuner_stats["warm_start_misses"] += 1
        return None
    func.schedule = replace(record.schedules[0])
    tuner_stats["warm_start_hits"] += 1
    return record
