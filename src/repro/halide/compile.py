"""Compiled-kernel backend: lower a lifted Func to a fused NumPy kernel.

The interpreter in :mod:`repro.halide.realize` re-walks the expression tree on
every call, paying per-node dispatch, duplicate evaluation of shared subtrees,
full ``int64`` intermediates and a masked wrap for every cast.  This module
lowers a :class:`~repro.halide.func.Func` to Python source implementing one
fused kernel, ``compile()``s it once, and caches the result keyed on the IR's
structural signature + dtype + schedule, so repeated realizations pay codegen
exactly once.

The generated kernel is *bit-identical* to the interpreter by construction:

* shared subtrees are evaluated once (CSE via value numbering from
  :mod:`repro.ir.structhash`), which cannot change values;
* integer arithmetic runs in ``int32`` instead of ``int64`` only when interval
  analysis proves every intermediate fits (identical values, half the memory
  traffic), otherwise the kernel mirrors the interpreter's ``int64`` ops;
* casts whose operand provably already lies in the target range skip the
  mask-and-sign-fix wrap entirely;
* shifted-window buffer accesses compile to array slices with the same
  runtime fallback the interpreter uses;
* long integer chains accumulate in place (``np.add(..., out=...)``) when the
  destination temporary is provably dead, eliminating allocations.

Anything the lowering cannot prove or express raises :class:`LoweringError`
and the Func falls back to an interpreter-backed kernel, so ``compiled`` is
always safe to use as the default engine.
"""

from __future__ import annotations

import threading
from concurrent import futures
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..ir import (
    BinOp,
    BufferAccess,
    Call,
    Cast,
    Const,
    DType,
    Expr,
    Op,
    Param,
    Select,
    UnOp,
    Var,
    number_subtrees,
)  # noqa: F401 (DType used in annotations)
from ..ir.simplify import _trunc_div
from ..reliability.faults import fault_point
from .func import Func
from .parallel import (
    reset_fallback_warnings,
    run_reduction_strips,
    run_tiles,
    warn_serial_fallback,
)
from .realize import (
    RealizationError,
    _strip_self_reference,
    _trunc_divide,
    _trunc_remainder,
    _wrap_cast,
    realize_interp,
    realize_region_interp,
    reduce_region_interp,
)


class LoweringError(Exception):
    """Raised when a Func cannot be lowered; the caller falls back to interp."""


#: Extents above this disable the narrow-int fast path at run time (interval
#: analysis assumes loop variables stay below it).
VAR_BOUND = 1 << 20

_INF = float("inf")


# ---------------------------------------------------------------------------
# Runtime helpers referenced by generated code
# ---------------------------------------------------------------------------


def _win(array: np.ndarray, offsets, origin, extent, dt) -> np.ndarray:
    """A shifted-window load: slice when in bounds, gather otherwise.

    ``offsets``/``origin``/``extent`` are outermost-first (NumPy axis order).
    Mirrors the interpreter's ``_sliced_access`` fast path plus its generic
    gather fallback, so both engines select values identically.
    """
    rank = len(extent)
    if array.ndim == rank:
        slices = []
        for axis in range(rank):
            offset = offsets[axis] + origin[axis]
            if offset < 0 or offset + extent[axis] > array.shape[axis]:
                break
            slices.append(slice(offset, offset + extent[axis]))
        else:
            return array[tuple(slices)].astype(dt)
    indices = []
    for position in range(rank):           # innermost-first, like expr.indices
        axis = rank - 1 - position
        start = origin[axis] + offsets[axis]
        values = np.arange(start, start + extent[axis])
        indices.append(values.reshape((1,) * axis + (-1,) + (1,) * (rank - 1 - axis)))
    return _gather(array, indices, dt)


def _gather(array: np.ndarray, indices, dt) -> np.ndarray:
    """Generic indexed load, mirroring the interpreter's gather path."""
    idx = [np.asarray(i).astype(np.int64) for i in indices]
    if len(idx) > 1:
        idx = np.broadcast_arrays(*idx)
    return array[tuple(reversed(idx))].astype(dt)


# ---------------------------------------------------------------------------
# Interval analysis
# ---------------------------------------------------------------------------


def _dtype_bounds(dtype: DType) -> tuple[int, int]:
    if dtype.is_signed:
        half = 1 << (dtype.bits - 1)
        return -half, half - 1
    return 0, (1 << dtype.bits) - 1


def _corner(fn, a, b):
    values = [fn(x, y) for x in a for y in b]
    return min(values), max(values)


def _interval_binop(op: str, a, b):
    """Bounds of ``a op b`` given operand bounds; None when unknown."""
    if a is None or b is None:
        return (0, 1) if op in Op.COMPARISONS else None
    a_lo, a_hi = a
    b_lo, b_hi = b
    if op == Op.ADD:
        return a_lo + b_lo, a_hi + b_hi
    if op == Op.SUB:
        return a_lo - b_hi, a_hi - b_lo
    if op == Op.MUL:
        return _corner(lambda x, y: x * y, (a_lo, a_hi), (b_lo, b_hi))
    if op == Op.DIV:
        if b_lo <= 0 <= b_hi:
            return None
        return _corner(_trunc_div, (a_lo, a_hi), (b_lo, b_hi))
    if op == Op.MOD:
        if b_lo <= 0 <= b_hi:
            return None
        magnitude = max(abs(b_lo), abs(b_hi)) - 1
        return (-magnitude if a_lo < 0 else 0), (magnitude if a_hi > 0 else 0)
    if op in (Op.SHR, Op.SAR):
        if b_lo < 0 or b_hi > 31:
            return None
        return _corner(lambda x, y: x >> y, (a_lo, a_hi), (b_lo, b_hi))
    if op == Op.SHL:
        if b_lo < 0 or b_hi > 31:
            return None
        return _corner(lambda x, y: x << y, (a_lo, a_hi), (b_lo, b_hi))
    if op == Op.AND:
        if a_lo >= 0 and b_lo >= 0:
            return 0, min(a_hi, b_hi)
        return None
    if op in (Op.OR, Op.XOR):
        if a_lo >= 0 and b_lo >= 0:
            return 0, (1 << max(a_hi, b_hi).bit_length()) - 1
        return None
    if op == Op.MIN:
        return min(a_lo, b_lo), min(a_hi, b_hi)
    if op == Op.MAX:
        return max(a_lo, b_lo), max(a_hi, b_hi)
    if op in Op.COMPARISONS:
        return 0, 1
    return None


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


@dataclass
class _Entry:
    """Emission state of one value-numbered subtree."""

    code: str                 # atom: a temp name, literal, or short call
    kind: str                 # 'int', 'bool', 'f32', 'f64'
    owned: bool = False       # a fresh array this kernel may overwrite
    full: bool = False        # shaped exactly like the output block
    uses_left: int = 0
    alias: Optional[int] = None   # elided casts forward to their operand


_INPLACE_OPS = {
    Op.ADD: "_np.add", Op.SUB: "_np.subtract", Op.MUL: "_np.multiply",
    Op.AND: "_np.bitwise_and", Op.OR: "_np.bitwise_or", Op.XOR: "_np.bitwise_xor",
    Op.MIN: "_np.minimum", Op.MAX: "_np.maximum",
    Op.SHR: "_np.right_shift", Op.SAR: "_np.right_shift", Op.SHL: "_np.left_shift",
}

_PLAIN_OPS = {
    Op.ADD: "+", Op.SUB: "-", Op.MUL: "*", Op.AND: "&", Op.OR: "|", Op.XOR: "^",
    Op.SHR: ">>", Op.SAR: ">>", Op.SHL: "<<",
    Op.LT: "<", Op.LE: "<=", Op.GT: ">", Op.GE: ">=", Op.EQ: "==", Op.NE: "!=",
}


class _DomainEmitter:
    """Emits straight-line NumPy code evaluating expressions over a domain.

    ``mode='pure'`` evaluates over the output block (``origin``/``extent``
    locals, window loads enabled); ``mode='reduction'`` evaluates over the
    reduction source's full domain (``_rshape`` local, gathers only, int64
    arithmetic mirroring the interpreter exactly).
    """

    def __init__(self, func: Func, roots: list[Expr], mode: str,
                 namespace: dict) -> None:
        self.func = func
        self.roots = roots
        self.mode = mode
        self.namespace = namespace
        self.rank = len(func.variables)
        self.lines: list[str] = []
        self.entries: dict[int, _Entry] = {}
        self.buffer_vars: dict[str, str] = {}
        self.grid_vars: dict[str, str] = {}
        self.windows: dict[Expr, tuple] = {}
        if mode == "pure":
            self._classify_windows()
        self.numbering = number_subtrees(
            roots, skip_children=lambda n: n in self.windows)
        self.intervals: dict[int, Optional[tuple]] = {}
        self.kinds: dict[int, str] = {}
        self._analyze()
        self._mark_float_loads()
        self.idt_name = "_np.int64"
        self.narrow = False
        if mode == "pure":
            for bits, name in ((16, "_np.int16"), (32, "_np.int32")):
                if self._fits_int(bits):
                    self.idt_name = name
                    self.narrow = True
                    break
        self.uses_var_grid = False

    # -- analysis -----------------------------------------------------------

    def _classify_windows(self) -> None:
        var_position = {v.name: p for p, v in enumerate(self.func.variables)}
        stack = list(self.roots)
        seen = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(node.children)
            if not isinstance(node, BufferAccess) or node in self.windows:
                continue
            if len(node.indices) != self.rank or self.rank == 0:
                continue
            offsets = [None] * self.rank
            for position, index in enumerate(node.indices):
                shift = _shift_of_index(index)
                if shift is None:
                    break
                name, offset = shift
                if var_position.get(name) != position:
                    break
                offsets[self.rank - 1 - position] = offset
            else:
                self.windows[node] = tuple(offsets)

    def _analyze(self) -> None:
        reduction_vars = set()
        if self.mode == "reduction" and self.func.reduction is not None:
            reduction_vars = {v.name for v in self.func.reduction[0].vars()}
        pure_vars = {v.name for v in self.func.variables}
        for node in self.numbering.order:
            vid = self.numbering.ids[node]
            kind, interval = self._node_info(node, pure_vars, reduction_vars)
            self.kinds[vid] = kind
            self.intervals[vid] = interval

    def _node_info(self, node: Expr, pure_vars, reduction_vars):
        get = lambda child: self.intervals[self.numbering.ids[child]]
        kind_of = lambda child: self.kinds[self.numbering.ids[child]]
        if isinstance(node, Const):
            if isinstance(node.value, int):
                return "int", (node.value, node.value)
            return "f64", None
        if isinstance(node, Param):
            return ("f64" if node.dtype.is_float else "int"), None
        if isinstance(node, Var):
            names = reduction_vars if self.mode == "reduction" else pure_vars
            if node.name not in names:
                raise LoweringError(f"unbound variable {node.name}")
            return "int", (0, VAR_BOUND)
        if isinstance(node, BufferAccess):
            if node.dtype.is_float:
                return "f64", None
            return "int", _dtype_bounds(node.dtype)
        if isinstance(node, Cast):
            operand_kind = kind_of(node.a)
            if node.dtype.is_float:
                return ("f64" if node.dtype.bits == 64 else "f32"), None
            if not node.dtype.is_integer:
                raise LoweringError(f"cannot lower cast to {node.dtype}")
            bounds = _dtype_bounds(node.dtype)
            operand = get(node.a)
            if operand_kind in ("int", "bool") and operand is not None \
                    and bounds[0] <= operand[0] and operand[1] <= bounds[1]:
                return "int", operand
            return "int", bounds
        if isinstance(node, BinOp):
            a_kind, b_kind = kind_of(node.a), kind_of(node.b)
            if node.op in Op.COMPARISONS:
                return "bool", (0, 1)
            floats = {k for k in (a_kind, b_kind) if k in ("f32", "f64")}
            if floats:
                if node.op in (Op.MOD, Op.SHR, Op.SAR, Op.SHL, Op.AND, Op.OR, Op.XOR):
                    raise LoweringError(f"integer op {node.op} on float operand")
                if node.op in (Op.MIN, Op.MAX, Op.ADD, Op.SUB, Op.MUL, Op.DIV):
                    kind = "f32" if floats == {"f32"} and a_kind == b_kind else "f64"
                    return kind, None
                raise LoweringError(f"unknown float op {node.op}")
            return "int", _interval_binop(node.op, get(node.a), get(node.b))
        if isinstance(node, UnOp):
            operand_kind = kind_of(node.a)
            operand = get(node.a)
            if node.op == Op.NEG:
                if operand_kind in ("f32", "f64"):
                    return operand_kind, None
                if operand is None:
                    return "int", None
                return "int", (-operand[1], -operand[0])
            if node.op == Op.NOT:
                if operand is None:
                    return "int", None
                return "int", (-operand[1] - 1, -operand[0] - 1)
            if node.op == Op.ABS:
                if operand_kind in ("f32", "f64"):
                    return operand_kind, None
                if operand is None:
                    return "int", None
                lo, hi = operand
                low = 0 if lo <= 0 <= hi else min(abs(lo), abs(hi))
                return "int", (low, max(abs(lo), abs(hi)))
            raise LoweringError(f"unknown unary op {node.op}")
        if isinstance(node, Select):
            t_kind, f_kind = kind_of(node.if_true), kind_of(node.if_false)
            floats = {k for k in (t_kind, f_kind) if k in ("f32", "f64")}
            if floats:
                return ("f32" if floats == {"f32"} and t_kind == f_kind else "f64"), None
            t_bounds, f_bounds = get(node.if_true), get(node.if_false)
            if t_bounds is None or f_bounds is None:
                return "int", None
            return "int", (min(t_bounds[0], f_bounds[0]), max(t_bounds[1], f_bounds[1]))
        if isinstance(node, Call):
            if node.func == "round":
                return "int", None
            if node.func in ("sqrt", "floor", "ceil"):
                arg_kind = kind_of(node.args[0])
                return (arg_kind if arg_kind in ("f32", "f64") else "f64"), None
            raise LoweringError(f"unknown call {node.func}")
        raise LoweringError(f"cannot lower {type(node).__name__}")

    def _mark_float_loads(self) -> None:
        """Integer loads consumed only by float64 casts load as float64.

        ``uint8 -> float64`` directly equals ``uint8 -> int64 -> float64``
        (every source dtype is exact in a double), and skipping the integer
        intermediate removes the kernel's most expensive conversion.  Chains
        of value-preserving integer casts between the load and the float cast
        (``cast<f64>(cast<u32>(load))``) are looked through and become
        pass-throughs.
        """
        parents: dict[int, list[Expr]] = {}
        for node in self.numbering.order:
            if node in self.windows:
                continue
            for child in node.children:
                parents.setdefault(self.numbering.ids[child], []).append(node)
        promotable: dict[int, bool] = {}

        def value_preserving(cast: Cast) -> bool:
            operand_vid = self.numbering.ids[cast.a]
            bounds = _dtype_bounds(cast.dtype)
            interval = self.intervals[operand_vid]
            return (self.kinds[operand_vid] == "int" and interval is not None
                    and bounds[0] <= interval[0] and interval[1] <= bounds[1])

        def feeds_only_f64(vid: int) -> bool:
            cached = promotable.get(vid)
            if cached is not None:
                return cached
            promotable[vid] = False        # break cycles defensively
            consumers = parents.get(vid, [])
            verdict = bool(consumers)
            for parent in consumers:
                if isinstance(parent, Cast) and parent.dtype.is_float \
                        and parent.dtype.bits == 64:
                    continue
                if isinstance(parent, Cast) and parent.dtype.is_integer \
                        and value_preserving(parent) \
                        and feeds_only_f64(self.numbering.ids[parent]):
                    continue
                verdict = False
                break
            promotable[vid] = verdict
            return verdict

        for node in self.numbering.order:
            if not isinstance(node, BufferAccess) or node.dtype.is_float:
                continue
            vid = self.numbering.ids[node]
            if not feeds_only_f64(vid):
                continue
            self.kinds[vid] = "f64"
            # The intermediate value-preserving int casts become aliases.
            stack = [parent for parent in parents.get(vid, [])]
            while stack:
                parent = stack.pop()
                parent_vid = self.numbering.ids[parent]
                if isinstance(parent, Cast) and parent.dtype.is_integer \
                        and promotable.get(parent_vid):
                    if self.kinds[parent_vid] != "f64":
                        self.kinds[parent_vid] = "f64"
                        stack.extend(parents.get(parent_vid, []))

    def _fits_int(self, bits: int) -> bool:
        """Can every integer intermediate run exactly in this width?

        Requires every int-valued node's interval to fit, and — for casts
        that still emit a mask — the mask constant itself to be representable
        (an out-of-range Python scalar would raise under NEP 50 promotion).
        """
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        for node in self.numbering.order:
            vid = self.numbering.ids[node]
            kind = self.kinds[vid]
            if kind not in ("int", "bool"):
                continue
            interval = self.intervals[vid]
            if interval is None or interval[0] < lo or interval[1] > hi:
                return False
            if isinstance(node, Cast) and node.dtype.is_integer:
                operand_vid = self.numbering.ids[node.a]
                bounds = _dtype_bounds(node.dtype)
                operand_interval = self.intervals[operand_vid]
                elided = (self.kinds[operand_vid] == "int"
                          and operand_interval is not None
                          and bounds[0] <= operand_interval[0]
                          and operand_interval[1] <= bounds[1])
                if not elided and (1 << node.dtype.bits) - 1 > hi:
                    return False
        return True

    # -- emission -----------------------------------------------------------

    def emit(self, indent: str) -> dict[Expr, str]:
        """Emit assignments for every numbered node; returns root atoms."""
        self.indent = indent
        for node in self.numbering.order:
            self._emit_node(node)
        return {root: self._resolve(self.numbering.ids[root]).code
                for root in self.roots}

    def _resolve(self, vid: int) -> _Entry:
        entry = self.entries[vid]
        while entry.alias is not None:
            entry = self.entries[entry.alias]
        return entry

    def _line(self, text: str) -> None:
        self.lines.append(f"{self.indent}{text}")

    def _buffer(self, name: str) -> str:
        var = self.buffer_vars.get(name)
        if var is None:
            var = f"_b{len(self.buffer_vars)}"
            self.buffer_vars[name] = var
            self._line(f"{var} = buffers.get({name!r})")
            self._line(f"if {var} is None:")
            if self.mode == "reduction" and name == self.func.name:
                # Self-reference: bound by the kernel body, never missing.
                self._line("    pass")
            else:
                self._line(f"    raise RealizationError('no binding for buffer {name}')")
        return var

    def _operand(self, child: Expr, allow_bool: bool = False) -> str:
        vid = self.numbering.ids[child]
        entry = self._resolve(vid)
        entry.uses_left -= 1
        if entry.kind == "bool" and not allow_bool:
            return f"{entry.code}.astype({self.idt_name})"
        return entry.code

    def _peek(self, child: Expr) -> _Entry:
        return self._resolve(self.numbering.ids[child])

    def _store(self, node: Expr, code: str, owned: bool, full: bool,
               assign: bool = True) -> None:
        vid = self.numbering.ids[node]
        uses = self.numbering.uses[vid]
        if assign:
            name = f"t{vid}"
            self._line(f"{name} = {code}")
            code = name
        self.entries[vid] = _Entry(code=code, kind=self.kinds[vid], owned=owned,
                                   full=full, uses_left=uses)

    def _alias(self, node: Expr, operand: Expr) -> None:
        vid = self.numbering.ids[node]
        operand_vid = self.numbering.ids[operand]
        root = self._resolve(operand_vid)
        # The cast's consumers use the operand directly: replace the cast's
        # single pending use of the operand with the cast's own use count.
        root.uses_left += self.numbering.uses[vid] - 1
        entry = _Entry(code="", kind=self.kinds[vid], alias=operand_vid)
        self.entries[vid] = entry

    def _emit_node(self, node: Expr) -> None:
        vid = self.numbering.ids[node]
        kind = self.kinds[vid]
        if isinstance(node, Const):
            if isinstance(node.value, int):
                code = f"({node.value!r})" if node.value < 0 else repr(node.value)
                self._store(node, code, owned=False, full=False, assign=False)
            else:
                # Matches the interpreter's np.asarray(value): a 0-d float64
                # array, so float32 promotion behaves identically.
                self._store(node, f"_np.asarray({node.value!r})",
                            owned=False, full=False, assign=False)
            return
        if isinstance(node, Param):
            self._store(node, f"_np.asarray(params.get({node.name!r}, {node.value!r}))",
                        owned=False, full=False)
            return
        if isinstance(node, Var):
            self._store(node, self._grid(node.name), owned=False,
                        full=(self.mode == "reduction"), assign=False)
            return
        if isinstance(node, BufferAccess):
            self._emit_access(node, vid)
            return
        if isinstance(node, Cast):
            self._emit_cast(node, vid)
            return
        if isinstance(node, BinOp):
            self._emit_binop(node, vid)
            return
        if isinstance(node, UnOp):
            operand = self._operand(node.a)
            if node.op == Op.NEG:
                self._emit_compute(node, f"-{operand}", node.a)
            elif node.op == Op.NOT:
                self._store(node, f"~_np.asarray({operand}).astype(_np.int64)"
                            if not self.narrow else f"~_np.asarray({operand})",
                            owned=True, full=self._peek(node.a).full)
            else:
                self._emit_compute(node, f"_np.abs({operand})", node.a)
            return
        if isinstance(node, Select):
            cond = self._operand(node.cond, allow_bool=True)
            if self._peek(node.cond).kind != "bool":
                cond = f"({cond} != 0)"
            if_true = self._operand(node.if_true)
            if_false = self._operand(node.if_false)
            full = any(self._peek(c).full for c in node.children)
            self._store(node, f"_np.where({cond}, {if_true}, {if_false})",
                        owned=True, full=full)
            return
        if isinstance(node, Call):
            args = [self._operand(a) for a in node.args]
            if node.func == "round":
                self._store(node, f"_np.rint({args[0]}).astype(_np.int64)",
                            owned=True, full=self._peek(node.args[0]).full)
            else:
                self._store(node, f"_np.{node.func}({args[0]})",
                            owned=True, full=self._peek(node.args[0]).full)
            return
        raise LoweringError(f"cannot emit {type(node).__name__}")

    def _grid(self, name: str) -> str:
        var = self.grid_vars.get(name)
        if var is not None:
            return var
        var = f"_g{len(self.grid_vars)}"
        self.grid_vars[name] = var
        if self.mode == "pure":
            position = {v.name: p for p, v in enumerate(self.func.variables)}[name]
            axis = self.rank - 1 - position
            shape = "(1,) * %d + (-1,) + (1,) * %d" % (axis, self.rank - 1 - axis)
            dt = self.idt_name if self.narrow else "_np.int64"
            self._line(f"{var} = _np.arange(origin[{axis}], origin[{axis}] "
                       f"+ extent[{axis}], dtype={dt}).reshape({shape})")
            self.uses_var_grid = True
        else:
            rdom = self.func.reduction[0]
            position = {v.name: p for p, v in enumerate(rdom.vars())}[name]
            dims = rdom.dimensions
            axis = dims - 1 - position
            shape = "(1,) * %d + (-1,) + (1,) * %d" % (axis, dims - 1 - axis)
            self._line(f"{var} = _np.broadcast_to(_np.arange(_rorigin[{axis}], "
                       f"_rorigin[{axis}] + _rextent[{axis}])"
                       f".reshape({shape}), _rextent)")
        return var

    def _emit_access(self, node: BufferAccess, vid: int) -> None:
        array = self._buffer(node.buffer)
        as_float = node.dtype.is_float or self.kinds[vid] == "f64"
        dt = "_np.float64" if as_float else self.idt_name
        if node in self.windows:
            offsets = self.windows[node]
            self._store(node, f"_win({array}, {offsets!r}, origin, extent, {dt})",
                        owned=True, full=True)
            return
        indices = ", ".join(self._operand(i) for i in node.indices)
        self._store(node, f"_gather({array}, ({indices},), {dt})",
                    owned=True, full=True)

    def _emit_cast(self, node: Cast, vid: int) -> None:
        operand_entry = self._peek(node.a)
        if node.dtype.is_integer and self.kinds[vid] == "f64":
            # A value-preserving int cast on a promoted float-load chain:
            # the wrap is a no-op on in-range values, so pass through.
            self._alias(node, node.a)
            return
        if node.dtype.is_float:
            target_kind = "f64" if node.dtype.bits == 64 else "f32"
            if operand_entry.kind == target_kind:
                # Same-dtype float cast is the identity; aliasing (instead of
                # astype(copy=False)) keeps the operand's ownership visible
                # so downstream arithmetic can still run in place.
                self._alias(node, node.a)
                return
            target = "_np.float64" if node.dtype.bits == 64 else "_np.float32"
            operand = self._operand(node.a)
            self._store(node, f"_np.asarray({operand}).astype({target}, copy=False)",
                        owned=False, full=operand_entry.full)
            return
        bounds = _dtype_bounds(node.dtype)
        operand_interval = self.intervals[self.numbering.ids[node.a]]
        if operand_entry.kind == "int" and operand_interval is not None \
                and bounds[0] <= operand_interval[0] and operand_interval[1] <= bounds[1]:
            self._alias(node, node.a)
            return
        if operand_entry.kind == "bool":
            operand = self._operand(node.a)
            self._store(node, operand, owned=True, full=operand_entry.full)
            return
        operand = self._operand(node.a)
        full = operand_entry.full
        if operand_entry.kind in ("f32", "f64"):
            operand = f"_np.asarray({operand}).astype(_np.int64, copy=False)"
        elif not self.narrow:
            operand = f"_np.asarray({operand})"
        mask = (1 << node.dtype.bits) - 1
        temp = f"t{vid}"
        self._line(f"{temp} = {operand} & {mask:#x}")
        if node.dtype.is_signed:
            sign_bit = 1 << (node.dtype.bits - 1)
            modulus = 1 << node.dtype.bits
            self._line(f"{temp} = _np.where({temp} >= {sign_bit}, "
                       f"{temp} - {modulus}, {temp})")
        if self.narrow and operand_entry.kind in ("f32", "f64"):
            self._line(f"{temp} = {temp}.astype({self.idt_name})")
        self.entries[vid] = _Entry(code=temp, kind="int", owned=True, full=full,
                                   uses_left=self.numbering.uses[vid])

    def _emit_binop(self, node: BinOp, vid: int) -> None:
        kind = self.kinds[vid]
        if node.op in Op.COMPARISONS:
            a = self._operand(node.a)
            b = self._operand(node.b)
            full = self._peek(node.a).full or self._peek(node.b).full
            # asarray keeps scalar-vs-scalar comparisons numpy bools (Python
            # bools have no .astype for the later int coercion).
            self._store(node, f"_np.asarray({a}) {_PLAIN_OPS[node.op]} {b}",
                        owned=True, full=full)
            return
        if node.op == Op.DIV and kind == "int":
            a = self._operand(node.a)
            b = self._operand(node.b)
            full = self._peek(node.a).full or self._peek(node.b).full
            self._store(node, f"_trunc_divide({a}, {b})", owned=True, full=full)
            return
        if node.op == Op.MOD:
            a = self._operand(node.a)
            b = self._operand(node.b)
            full = self._peek(node.a).full or self._peek(node.b).full
            self._store(node, f"_trunc_remainder({a}, {b})", owned=True, full=full)
            return
        if node.op in (Op.MIN, Op.MAX):
            fn = "_np.minimum" if node.op == Op.MIN else "_np.maximum"
            if self._try_inplace(node, vid, _INPLACE_OPS[node.op]):
                return
            a = self._operand(node.a)
            b = self._operand(node.b)
            full = self._peek(node.a).full or self._peek(node.b).full
            self._store(node, f"{fn}({a}, {b})", owned=True, full=full)
            return
        if node.op == Op.DIV:           # float division
            a = self._operand(node.a)
            b = self._operand(node.b)
            full = self._peek(node.a).full or self._peek(node.b).full
            self._store(node, f"{a} / {b}", owned=True, full=full)
            return
        if node.op not in _PLAIN_OPS:
            raise LoweringError(f"unknown operator {node.op}")
        if node.op in _INPLACE_OPS and self._try_inplace(node, vid, _INPLACE_OPS[node.op]):
            return
        a = self._operand(node.a)
        b = self._operand(node.b)
        full = self._peek(node.a).full or self._peek(node.b).full
        self._store(node, f"{a} {_PLAIN_OPS[node.op]} {b}", owned=True, full=full)

    def _try_inplace(self, node: BinOp, vid: int, ufunc: str) -> bool:
        """Accumulate into a dead, fully-shaped operand: no allocation.

        The left operand is preferred; for commutative operators a dead right
        operand works too (the ufunc arguments keep their order, only ``out``
        targets the reusable array).
        """
        if self.mode != "pure":
            return False
        kind = self.kinds[vid]
        a_entry = self._peek(node.a)
        b_entry = self._peek(node.b)

        def compatible(entry) -> bool:
            return entry.kind == kind or (entry.kind == "bool" and kind == "int")

        def reusable(entry, other) -> bool:
            return (entry.owned and entry.full and entry.uses_left == 1
                    and entry.kind == kind and compatible(other))

        target_entry = None
        if reusable(a_entry, b_entry):
            target_entry = a_entry
        elif node.op in Op.COMMUTATIVE and reusable(b_entry, a_entry):
            target_entry = b_entry
        if target_entry is None:
            return False
        a = self._operand(node.a)
        b = self._operand(node.b)
        out = a if target_entry is a_entry else b
        self._line(f"{ufunc}({a}, {b}, out={out})")
        self.entries[vid] = _Entry(code=out, kind=kind, owned=True, full=True,
                                   uses_left=self.numbering.uses[vid])
        target_entry.owned = False     # storage now belongs to this node
        return True

    def _emit_compute(self, node: Expr, code: str, shaped_like: Expr) -> None:
        self._store(node, code, owned=True, full=self._peek(shaped_like).full)


def _shift_of_index(index: Expr) -> Optional[tuple[str, int]]:
    """Match ``var``, ``var + c`` or ``c + var``; None for anything else."""
    if isinstance(index, Var):
        return index.name, 0
    if isinstance(index, BinOp) and index.op == Op.ADD:
        a, b = index.a, index.b
        if isinstance(a, Var) and isinstance(b, Const) and isinstance(b.value, int):
            return a.name, int(b.value)
        if isinstance(b, Var) and isinstance(a, Const) and isinstance(a.value, int):
            return b.name, int(a.value)
    return None


# ---------------------------------------------------------------------------
# Kernel assembly
# ---------------------------------------------------------------------------


@dataclass
class CompiledKernel:
    """A compiled (or fallback) realization of one Func.

    ``parallel_capable`` reports whether the generated kernel can fan its
    tiles out across the shared worker pool — i.e. whether the schedule's
    ``parallel`` request was honoured by codegen.  (Even a capable kernel may
    run a particular call serially when the cost heuristic in
    :mod:`repro.halide.parallel` decides the output is too small; real
    per-call outcomes are tallied in ``parallel.execution_stats``.)
    """

    fn: object
    engine: str                    # 'compiled' or 'interp-fallback'
    source: str = ""
    compute_dtype: str = ""
    parallel_capable: bool = False
    #: The region body ``_body(origin, extent, buffers, params)`` (NumPy axis
    #: order) of a pure kernel — the primitive the lowered ``Stmt`` executor
    #: calls per Store; None for reduction-only kernels.
    body: object = None
    #: The Func this kernel realizes (for region-eval fallbacks).
    func: object = None
    #: The region-parameterized reduction body
    #: ``_reduce(out, origin, extent, buffers, params)`` applying the update
    #: sweep over one RDom sub-region in place; None for pure kernels and
    #: interpreter fallbacks.
    reduce: object = None
    #: True when the kernel narrowed its integer dtype *and* materializes
    #: variable grids: region evaluations whose coordinates reach
    #: ``VAR_BOUND`` must take the interpreter path instead (the narrow grid
    #: would overflow), mirroring the guard in the kernel entry.
    narrow_guard: bool = False

    def __call__(self, shape: tuple[int, ...], buffers: Mapping[str, np.ndarray],
                 params: Mapping[str, float]) -> np.ndarray:
        fault_point("kernel.execute")
        return self.fn(tuple(reversed(shape)), buffers, params)

    def evaluate_region(self, origin: tuple[int, ...], extent: tuple[int, ...],
                        buffers: Mapping[str, np.ndarray],
                        params: Mapping[str, float]) -> np.ndarray:
        """Evaluate the pure body over one region (NumPy axis order)."""
        if self.body is None:
            raise RealizationError(
                "kernel has no pure region body (reduction-only Func)")
        if self.narrow_guard and any(int(o) + int(e) >= VAR_BOUND
                                     for o, e in zip(origin, extent)):
            return realize_region_interp(self.func, origin, extent,
                                         buffers, params)
        return self.body(tuple(int(o) for o in origin),
                         tuple(int(e) for e in extent), buffers, params)

    def reduce_region(self, out: np.ndarray, origin: tuple[int, ...],
                      extent: tuple[int, ...],
                      buffers: Mapping[str, np.ndarray],
                      params: Mapping[str, float]) -> np.ndarray:
        """Apply the reduction update over one RDom sub-region, in place.

        The primitive behind lowered :class:`~repro.ir.stmt.ReduceLoop`
        nodes.  Falls back to the interpreter's region sweep when this
        kernel carries no compiled reduction body or the bound source's rank
        does not match the RDom (mirroring the whole-kernel entry's guard) —
        both sweeps are bit-identical.
        """
        if self.func is None or self.func.reduction is None:
            raise RealizationError("kernel has no reduction update")
        rdom = self.func.reduction[0]
        source = buffers.get(rdom.source)
        if self.reduce is None or (source is not None
                                   and source.ndim != rdom.dimensions):
            return reduce_region_interp(self.func, out, origin, extent,
                                        buffers, params)
        return self.reduce(out, tuple(int(o) for o in origin),
                           tuple(int(e) for e in extent), buffers, params)


_KERNEL_CACHE: dict[tuple, CompiledKernel] = {}
#: Guards the cache, its counters, and the pending-build table:
#: ``compile_func`` may race from the worker pool (parallel batches compiling
#: distinct stages) and the counters must stay exact under that concurrency.
_CACHE_LOCK = threading.Lock()
#: Signatures currently being built, mapped to a future the builder resolves;
#: racers on the *same* signature wait here (and count as hits) while racers
#: on distinct signatures compile concurrently outside the lock.
_PENDING_BUILDS: dict[tuple, "futures.Future"] = {}
kernel_cache_stats = {"hits": 0, "misses": 0, "fallbacks": 0}


def clear_kernel_cache() -> None:
    with _CACHE_LOCK:
        _KERNEL_CACHE.clear()
        # Drop pending builds too: a post-clear compile must look (and count)
        # fresh rather than latch onto a pre-clear in-flight build.  An
        # orphaned builder still resolves its own future for pre-clear
        # waiters; its pop() below is tolerant of the missing entry.
        _PENDING_BUILDS.clear()
        kernel_cache_stats["hits"] = 0
        kernel_cache_stats["misses"] = 0
        kernel_cache_stats["fallbacks"] = 0
    reset_fallback_warnings()


def func_signature(func: Func) -> tuple:
    """The structural cache key: IR identity + dtype + schedule.

    Structural keys deliberately exclude the observed values of ``Param``
    leaves, but the generated kernel bakes them in as ``params.get``
    defaults — two lifts of the same code with different runtime constants
    must not share a kernel, so the defaults join the key explicitly.
    """
    value_key = func.value.cached_key() if func.value is not None else None
    reduction_key = None
    roots = [func.value] if func.value is not None else []
    if func.reduction is not None:
        rdom, index_exprs, update = func.reduction
        reduction_key = (rdom.name, rdom.source, rdom.dimensions,
                         tuple(e.cached_key() for e in index_exprs),
                         update.cached_key())
        roots.extend(index_exprs)
        roots.append(update)
    param_defaults = tuple(sorted(
        {(node.name, node.value) for root in roots for node in root.walk()
         if isinstance(node, Param)}))
    return (func.name, tuple(v.name for v in func.variables), func.dtype,
            value_key, reduction_key, param_defaults,
            func.schedule.tile_x, func.schedule.tile_y, func.schedule.parallel)


def parallel_unsupported_reason(func: Func) -> Optional[str]:
    """Why ``schedule.parallel`` cannot be honoured for this Func (or None)."""
    return func.parallel_unsupported_reason()


def compile_func(func: Func) -> CompiledKernel:
    """Compile (or fetch from cache) the kernel realizing ``func``.

    Thread-safe: concurrent callers racing on the same signature compile the
    kernel exactly once and ``kernel_cache_stats`` stays exact (one miss,
    every other caller a hit), while distinct signatures compile concurrently
    — codegen runs outside the cache lock, guarded per signature.
    """
    signature = func_signature(func)
    with _CACHE_LOCK:
        kernel = _KERNEL_CACHE.get(signature)
        if kernel is not None:
            kernel_cache_stats["hits"] += 1
            return kernel
        pending = _PENDING_BUILDS.get(signature)
        if pending is None:
            kernel_cache_stats["misses"] += 1
            pending = futures.Future()
            _PENDING_BUILDS[signature] = pending
            building = True
        else:
            building = False
    if building:
        try:
            try:
                kernel = _build_kernel(func)
            except LoweringError:
                with _CACHE_LOCK:
                    kernel_cache_stats["fallbacks"] += 1
                kernel = CompiledKernel(
                    fn=lambda np_shape, buffers, params, _f=func: realize_interp(
                        _f, tuple(reversed(np_shape)), buffers, params),
                    engine="interp-fallback",
                    body=(None if func.value is None else
                          lambda origin, extent, buffers, params, _f=func:
                          realize_region_interp(_f, origin, extent, buffers,
                                                params)),
                    func=func)
        except BaseException as exc:       # unexpected codegen bug: unblock racers
            with _CACHE_LOCK:
                # Guarded like the success path: after clear_kernel_cache a
                # successor builder may own the entry — leave it alone.
                if _PENDING_BUILDS.get(signature) is pending:
                    del _PENDING_BUILDS[signature]
            pending.set_exception(exc)
            raise
        with _CACHE_LOCK:
            # Install only if this build is still current: clear_kernel_cache
            # may have run meanwhile, and re-inserting would undo the clear.
            if _PENDING_BUILDS.get(signature) is pending:
                _KERNEL_CACHE[signature] = kernel
                del _PENDING_BUILDS[signature]
        pending.set_result(kernel)       # pre-clear waiters still get a kernel
    else:
        kernel = pending.result()
        with _CACHE_LOCK:
            kernel_cache_stats["hits"] += 1
    if func.schedule.parallel and not kernel.parallel_capable:
        reason = parallel_unsupported_reason(func) or "lowering fell back"
        warn_serial_fallback(signature, reason)
    return kernel


def _build_kernel(func: Func) -> CompiledKernel:
    fault_point("compile.kernel")
    rank = len(func.variables)
    if rank == 0:
        raise LoweringError("zero-dimensional function")
    namespace: dict = {
        "_np": np, "_win": _win, "_gather": _gather,
        "_trunc_divide": _trunc_divide, "_trunc_remainder": _trunc_remainder,
        "_wrap_cast": _wrap_cast, "RealizationError": RealizationError,
        "_run_tiles": run_tiles, "_run_reduction_strips": run_reduction_strips,
        "_odtype": func.dtype, "_odt": func.dtype.to_numpy(),
        "_fallback": lambda np_shape, buffers, params, _f=func: realize_interp(
            _f, tuple(reversed(np_shape)), buffers, params),
    }
    lines: list[str] = []
    compute_dtype = "int64"
    parallel_capable = (func.schedule.parallel
                        and parallel_unsupported_reason(func) is None)

    if func.value is not None:
        emitter = _DomainEmitter(func, [func.value], "pure", namespace)
        compute_dtype = emitter.idt_name.replace("_np.", "")
        body_lines, root = _emit_pure_body(func, emitter)
        lines.extend(body_lines)
    else:
        lines.append("def _body(origin, extent, buffers, params):")
        lines.append("    return _np.zeros(extent, dtype=_odt)")
        emitter = None

    if func.reduction is not None:
        lines.append("")
        lines.extend(_emit_reduction_body(func, namespace))

    lines.append("")
    lines.extend(_emit_kernel_entry(func, emitter, parallel_capable))

    if func.reduction is not None:
        lines.extend(_emit_reduction_call(func, parallel_capable))
    lines.append("    return out")

    source = "\n".join(lines) + "\n"
    code = compile(source, f"<compiled kernel {func.name}>", "exec")
    exec(code, namespace)
    body = namespace.get("_body") if func.value is not None else None
    narrow_guard = emitter is not None and emitter.narrow \
        and emitter.uses_var_grid
    return CompiledKernel(fn=namespace["_kernel"], engine="compiled",
                         source=source, compute_dtype=compute_dtype,
                         parallel_capable=parallel_capable,
                         body=body, func=func, narrow_guard=narrow_guard,
                         reduce=namespace.get("_reduce"))


def _emit_pure_body(func: Func, emitter: _DomainEmitter) -> tuple[list[str], str]:
    lines = ["def _body(origin, extent, buffers, params):"]
    emitter.indent = "    "
    emitter.lines = []
    roots = emitter.emit("    ")
    root = roots[func.value]
    lines.extend(emitter.lines)
    root_vid = emitter.numbering.ids[func.value]
    root_interval = emitter.intervals[root_vid]
    root_kind = emitter.kinds[root_vid]
    lines.append(f"    block = _np.broadcast_to(_np.asarray({root}), extent)")
    bounds = _dtype_bounds(func.dtype) if func.dtype.is_integer else None
    if func.dtype.is_integer and root_kind in ("int", "bool") \
            and root_interval is not None \
            and bounds[0] <= root_interval[0] and root_interval[1] <= bounds[1]:
        # Provably in range: skip the mask-and-sign-fix wrap entirely.
        lines.append("    return block.astype(_odt)")
    else:
        lines.append("    return _wrap_cast(block, _odtype).astype(_odt)")
    return lines, root


def _emit_kernel_entry(func: Func, emitter: Optional[_DomainEmitter],
                       parallel: bool) -> list[str]:
    lines = ["def _kernel(shape, buffers, params):"]
    if emitter is not None and emitter.narrow and emitter.uses_var_grid:
        lines.append(f"    if shape and max(shape) >= {VAR_BOUND}:")
        lines.append("        return _fallback(shape, buffers, params)")
    rank = len(func.variables)
    tile_x, tile_y = func.schedule.tile_x, func.schedule.tile_y
    if func.value is not None and tile_x > 0 and tile_y > 0 and rank >= 2:
        lines.append("    out = _np.empty(shape, dtype=_odt)")
        lines.append(f"    _height, _width = shape[{rank - 2}], shape[{rank - 1}]")
        if parallel:
            # Enumerate the (disjoint) tiles, then let the shared worker pool
            # execute them; the cost heuristic may still keep a call serial.
            lines.append("    _tiles = []")
            lines.append(f"    for _oy in range(0, _height, {tile_y}):")
            lines.append(f"        _ey = min({tile_y}, _height - _oy)")
            lines.append(f"        for _ox in range(0, _width, {tile_x}):")
            lines.append(f"            _ex = min({tile_x}, _width - _ox)")
            lines.append(f"            _tiles.append(((0,) * {rank - 2} + (_oy, _ox), "
                         f"shape[:{rank - 2}] + (_ey, _ex)))")
            lines.append("    _run_tiles(_body, out, _tiles, buffers, params)")
        else:
            lines.append(f"    for _oy in range(0, _height, {tile_y}):")
            lines.append(f"        _ey = min({tile_y}, _height - _oy)")
            lines.append(f"        for _ox in range(0, _width, {tile_x}):")
            lines.append(f"            _ex = min({tile_x}, _width - _ox)")
            lines.append(f"            _origin = (0,) * {rank - 2} + (_oy, _ox)")
            lines.append(f"            _extent = shape[:{rank - 2}] + (_ey, _ex)")
            lines.append("            out[..., _oy:_oy + _ey, _ox:_ox + _ex] = "
                         "_body(_origin, _extent, buffers, params)")
    else:
        lines.append(f"    out = _body((0,) * {rank}, tuple(shape), buffers, params)")
    return lines


def _emit_reduction_body(func: Func, namespace: dict) -> list[str]:
    """The region-parameterized update sweep ``_reduce(out, origin, extent)``.

    ``_rorigin``/``_rextent`` delimit the swept RDom sub-region in global
    source coordinates (NumPy axis order); the whole-kernel entry calls it
    over the full source domain, and lowered :class:`~repro.ir.stmt.ReduceLoop`
    nodes (plus the parallel strip executor) call it per strip.
    """
    rdom, index_exprs, update = func.reduction
    increment = _strip_self_reference(update, func.name)
    roots = list(index_exprs) + [increment if increment is not None else update]
    emitter = _DomainEmitter(func, roots, "reduction", namespace)
    lines = ["def _reduce(out, _rorigin, _rextent, buffers, params):"]
    lines.append("    buffers = dict(buffers)")
    lines.append(f"    buffers[{func.name!r}] = out")
    emitter.lines = []
    atoms = emitter.emit("    ")
    lines.extend(emitter.lines)
    index_atoms = []
    for position, expr in enumerate(index_exprs):
        lines.append(f"    _i{position} = _np.asarray({atoms[expr]}).astype(_np.int64)")
        index_atoms.append(f"_i{position}")
    np_index = ", ".join(reversed(index_atoms))
    value_atom = atoms[roots[-1]]
    if increment is not None:
        lines.append(f"    _np.add.at(out, ({np_index},), _np.broadcast_to("
                     f"_np.asarray({value_atom}), _i0.shape).astype(out.dtype))")
    else:
        lines.append(f"    out[({np_index},)] = _wrap_cast(_np.asarray({value_atom}), "
                     "_odtype).astype(_odt)")
    lines.append("    return out")
    return lines


def _emit_reduction_call(func: Func, parallel: bool) -> list[str]:
    """The whole-kernel entry's reduction phase: full-domain sweep.

    Associative reductions whose schedule asks for ``parallel`` fan RDom row
    strips out across the shared pool into private partial accumulators with
    a deterministic serial merge (:func:`repro.halide.parallel.run_reduction_strips`);
    everything else runs the one serial whole-domain sweep the interpreter
    oracle runs.
    """
    rdom = func.reduction[0]
    lines = [f"    _src = buffers.get({rdom.source!r})"]
    lines.append("    if _src is None:")
    lines.append(f"        raise RealizationError("
                 f"'no binding for reduction source {rdom.source}')")
    lines.append(f"    if _src.ndim != {rdom.dimensions}:")
    lines.append("        return _fallback(shape, buffers, params)")
    if parallel and func.reduction_is_associative():
        strip = func.reduction_strip_rows()
        lines.append(f"    _run_reduction_strips(_reduce, out, _src.shape, "
                     f"{strip}, buffers, params)")
    else:
        lines.append(f"    _reduce(out, (0,) * {rdom.dimensions}, _src.shape, "
                     "buffers, params)")
    return lines
