"""Feature-based cost model for lowered-schedule candidates.

The autotuner samples a candidate set far larger than it can afford to
wall-clock-time; this model ranks the whole set analytically so only the
top-k survivors are timed (:mod:`repro.halide.autotune`).  Features come
from metadata the lowering already computes — :class:`StageDecision`
footprints, scratch allocation sizes, strip/refill counts, ghost-zone
padding — plus structural facts the schedule itself determines: arithmetic
intensity (expression node counts), tile dispatch counts, and parallel
fan-out against the live :func:`~repro.halide.parallel.configure_pool`
width.

The model is deliberately coarse: its contract is a useful *ranking*, not
an absolute time prediction.  Three properties are load-bearing (and
property-tested in ``tests/halide/test_costmodel.py``):

* **Determinism** — features and costs are pure functions of the pipeline
  structure, the frame shape and the pool configuration; no dict iteration
  order, hash seed, wall clock or RNG feeds them.
* **Stable total order** — ties on cost break on the candidate's
  ``describe()`` strings, so two processes (whatever their hash seeds)
  rank identical candidate sets identically.
* **Demoted never outranks valid** — a candidate the lowering demotes (or
  that requests parallelism the pool cannot honour) sorts after every
  fully-honoured candidate, whatever its modelled cost: the sort key is
  ``(demotions, cost, describe)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from .func import Func, Schedule
from .parallel import MIN_PARALLEL_ELEMS, parallel_enabled, pool_size

# Cost weights (arbitrary units; only relative magnitudes matter).  Tuned so
# the known-good orderings hold on the benchmark pipelines: compute_at with
# cache-resident scratch beats compute_root full-frame intermediates
# (fig8), row-strip compute_at (ghost-zone recompute x3 for a 3x3 stencil)
# loses to tile-sized scratch, and micro-tiles lose to untiled sweeps on
# per-tile dispatch overhead.
COST_POINT = 1.0            #: per point-operation (expression node visit)
MEM_WEIGHT = 6.0            #: per byte of a memory-resident intermediate
CACHE_WEIGHT = 0.5          #: per byte of a cache-resident intermediate
CACHE_RESIDENT_BYTES = 256 * 1024   #: L2-ish residency threshold
COST_TILE_DISPATCH = 400.0  #: per tile dispatched (slicing/loop overhead)

#: Per-backend tile-dispatch cost.  The NumPy engines pay Python-level
#: slicing, kernel-cache lookup and ufunc setup per Store; the native
#: backend's per-tile cost is a single GIL-released C call, so small tiles
#: stop being over-penalized there.  The interpreter re-walks the whole
#: expression tree per tile on top of the NumPy overheads.
COST_TILE_DISPATCH_BY_BACKEND = {
    "interp": 800.0,
    "compiled": COST_TILE_DISPATCH,
    "native": 40.0,
}


def tile_dispatch_cost(backend: str | None = None) -> float:
    """The per-tile dispatch weight for one backend (default: compiled)."""
    if backend is None:
        return COST_TILE_DISPATCH
    return COST_TILE_DISPATCH_BY_BACKEND.get(backend, COST_TILE_DISPATCH)
COST_SCRATCH_REFILL = 300.0  #: per compute_at scratch refill (pad + setup)
COST_TASK_SPAWN = 1500.0    #: per parallel work item offered to the pool
PARALLEL_EFFICIENCY = 0.75  #: marginal speedup per extra worker
MERGE_WEIGHT = 2.0          #: per merged partial-accumulator element


@dataclass(frozen=True)
class StageFeatures:
    """Deterministic per-stage features the cost terms are computed from."""

    name: str
    #: "output" | "root" | "at" | "default" (legacy full-frame stage).
    level: str
    #: The lowering could not honour the requested level (or a parallel
    #: request has no legal decomposition).
    demoted: bool
    #: Total points this stage materializes per frame, ghost-zone recompute
    #: included (``scratch_points * refills`` for compute_at stages).
    points: float
    #: Arithmetic intensity: expression nodes evaluated per point.
    work_per_point: float
    bytes_per_point: float
    #: Steady-state allocation backing the stage's values (scratch buffer
    #: for compute_at, full frame otherwise).
    resident_bytes: float
    #: compute_at scratch refills per frame (0 when not compute_at).
    refills: float
    #: Tiles the stage's own evaluation loop dispatches (1 = one sweep).
    tile_count: float
    #: Effective workers this stage's compute divides across (>= 1).
    parallel_width: float
    #: Partial accumulators a parallel reduction merges (0 = not a
    #: reduction, 1 = serial whole-domain sweep).
    reduction_strips: float
    #: True for stages whose materialization is consumed by a later stage
    #: (their bytes round-trip to the consumer; the final output is written
    #: exactly once either way).
    intermediate: bool


@dataclass(frozen=True)
class CandidateScore:
    """One candidate's modelled cost, orderable deterministically."""

    index: int                       #: position in the ranked candidate list
    describe: tuple[str, ...]        #: per-stage Schedule.describe() strings
    cost: float
    demotions: int
    features: tuple[StageFeatures, ...] = ()

    @property
    def sort_key(self) -> tuple:
        return (self.demotions, self.cost, self.describe)


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------


def expression_work(func: Func) -> float:
    """Expression nodes evaluated per output point (arithmetic intensity)."""
    nodes = 0
    if func.value is not None:
        nodes += sum(1 for _ in func.value.walk())
    if func.reduction is not None:
        _rdom, index_exprs, update = func.reduction
        nodes += sum(1 for _ in update.walk())
        nodes += sum(sum(1 for _ in expr.walk()) for expr in index_exprs)
    return float(max(nodes, 1))


def _tile_count(np_shape: Sequence[int], schedule: Schedule) -> float:
    """Tiles one evaluation sweep dispatches under this schedule."""
    shape = tuple(int(d) for d in np_shape)
    if len(shape) < 2 or schedule.tile_x <= 0 or schedule.tile_y <= 0:
        return 1.0
    # Variables are innermost-first: tile_x blocks the last NumPy axis,
    # tile_y the second-to-last; outer axes iterate the tile grid whole.
    tiles = math.ceil(shape[-1] / schedule.tile_x) \
        * math.ceil(shape[-2] / schedule.tile_y)
    outer = 1
    for extent in shape[:-2]:
        outer *= max(int(extent), 1)
    return float(tiles * outer)


def _effective_parallel_width(func: Func, np_shape: Sequence[int],
                              tile_count: float) -> float:
    """Workers this Func's compute really divides across (>= 1).

    Mirrors the execution stack's own gates: the schedule must request
    parallelism, the Func must have a legal decomposition
    (:meth:`Func.parallel_unsupported_reason`), the environment must allow
    it (pool width, kill switch), and the realization must clear the
    fan-out threshold below which the executor stays serial.
    """
    if not func.schedule.parallel:
        return 1.0
    if func.parallel_unsupported_reason() is not None:
        return 1.0
    if not parallel_enabled() or pool_size() < 2:
        return 1.0
    elems = 1
    for extent in np_shape:
        elems *= max(int(extent), 1)
    if elems < MIN_PARALLEL_ELEMS:
        return 1.0
    units = tile_count if func.reduction is None else \
        max(1.0, math.ceil(int(np_shape[0]) / func.reduction_strip_rows()))
    return float(max(1.0, min(pool_size(), units)))


def _frame_points(frame_shape: Sequence[int]) -> float:
    points = 1
    for extent in frame_shape:
        points *= max(int(extent), 1)
    return float(points)


# ---------------------------------------------------------------------------
# Feature extraction
# ---------------------------------------------------------------------------


def _legacy_stage_features(stage, np_shape: Sequence[int],
                           is_output: bool, demoted: bool) -> StageFeatures:
    """Features of one stage on the legacy full-frame path."""
    func = stage.func
    points = _frame_points(np_shape)
    tiles = _tile_count(np_shape, func.schedule)
    width = _effective_parallel_width(func, np_shape, tiles)
    strips = 0.0
    if func.reduction is not None:
        strips = width if width > 1 else 1.0
    return StageFeatures(
        name=stage.name,
        level="default",
        demoted=demoted,
        points=points,
        work_per_point=expression_work(func),
        bytes_per_point=float(getattr(func.dtype, "size", 1) or 1),
        resident_bytes=points * float(getattr(func.dtype, "size", 1) or 1),
        refills=0.0,
        tile_count=tiles,
        parallel_width=width,
        reduction_strips=strips,
        intermediate=not is_output,
    )


def _lowered_stage_features(pipeline, lowered,
                            frame_shape: Sequence[int]) -> list[StageFeatures]:
    """Features from the lowering's own :class:`StageDecision` metadata."""
    features: list[StageFeatures] = []
    stages = pipeline.stages
    frame_points = _frame_points(frame_shape)
    for index, (stage, decision) in enumerate(zip(stages, lowered.decisions)):
        func = stage.func
        is_output = index == len(stages) - 1
        itemsize = float(getattr(func.dtype, "size", 1) or 1)
        level = decision.level
        demoted = decision.demoted_reason is not None
        if level == "at" and decision.scratch_extent:
            scratch_points = _frame_points(decision.scratch_extent)
            # The scratch refills once per iteration of the consumer loop it
            # anchors in: per consumer tile when the consumer is tiled, per
            # row strip otherwise.
            consumer = stages[index + 1] if index + 1 < len(stages) else stage
            refills = _tile_count(frame_shape, consumer.func.schedule)
            if refills <= 1.0:
                from .lower import STRIP_HEIGHT

                refills = max(1.0, math.ceil(int(frame_shape[0])
                                             / STRIP_HEIGHT))
            points = scratch_points * refills
            resident = scratch_points * itemsize
        else:
            scratch_points = frame_points
            refills = 0.0
            points = frame_points
            resident = frame_points * itemsize
        tiles = _tile_count(frame_shape, func.schedule)
        width = _effective_parallel_width(func, frame_shape, tiles)
        strips = 0.0
        if func.reduction is not None:
            strips = width if width > 1 else 1.0
        features.append(StageFeatures(
            name=stage.name,
            level=level,
            demoted=demoted,
            points=points,
            work_per_point=expression_work(func),
            bytes_per_point=itemsize,
            resident_bytes=resident,
            refills=refills,
            tile_count=tiles,
            parallel_width=width,
            reduction_strips=strips,
            intermediate=not is_output,
        ))
    return features


def extract_pipeline_features(pipeline, frame_shape: Sequence[int]
                              ) -> tuple[list[StageFeatures], int]:
    """Features of the pipeline *as currently scheduled*.

    Returns ``(features, demotions)`` where ``demotions`` counts stages
    whose requested compute level the execution path will not honour — via
    the lowering's own decision report when the pipeline lowers, or the
    count of ignored root/at requests when it falls back to the legacy
    path (:class:`~repro.halide.lower.PipelineLoweringError`).
    """
    frame_shape = tuple(int(d) for d in frame_shape)
    if pipeline.uses_lowering():
        from .lower import PipelineLoweringError

        try:
            lowered = pipeline.lower(frame_shape)
        except PipelineLoweringError:
            lowered = None
        if lowered is not None:
            features = _lowered_stage_features(pipeline, lowered, frame_shape)
            return features, sum(1 for f in features if f.demoted)
        # Legacy fallback: every explicit compute level is silently ignored.
        features = []
        demotions = 0
        for index, stage in enumerate(pipeline.stages):
            requested = stage.func.schedule.compute in ("root", "at")
            if requested:
                demotions += 1
            features.append(_legacy_stage_features(
                stage, frame_shape, index == len(pipeline.stages) - 1,
                demoted=requested))
        return features, demotions
    features = [_legacy_stage_features(stage, frame_shape,
                                       index == len(pipeline.stages) - 1,
                                       demoted=False)
                for index, stage in enumerate(pipeline.stages)]
    return features, 0


def extract_func_features(func: Func, np_shape: Sequence[int],
                          buffers=None) -> tuple[list[StageFeatures], int]:
    """Single-Func analogue of :func:`extract_pipeline_features`.

    ``np_shape`` is the output shape in NumPy order.  For reduction Funcs,
    ``buffers`` (when given) supplies the RDom source extents so the domain
    sweep is costed over the real input size rather than the accumulator.
    """
    np_shape = tuple(int(d) for d in np_shape)
    domain_shape = np_shape
    if func.reduction is not None and buffers:
        rdom = func.reduction[0]
        source = buffers.get(rdom.source)
        if source is not None:
            domain_shape = tuple(int(d) for d in source.shape)
    points = _frame_points(domain_shape)
    tiles = _tile_count(domain_shape, func.schedule)
    width = _effective_parallel_width(func, domain_shape, tiles)
    strips = 0.0
    if func.reduction is not None:
        strips = max(1.0, math.ceil(int(domain_shape[0])
                                    / func.reduction_strip_rows())) \
            if width > 1 else 1.0
    demoted = bool(func.schedule.parallel
                   and func.parallel_unsupported_reason() is not None)
    itemsize = float(getattr(func.dtype, "size", 1) or 1)
    feature = StageFeatures(
        name=func.name,
        level="output",
        demoted=demoted,
        points=points,
        work_per_point=expression_work(func),
        bytes_per_point=itemsize,
        resident_bytes=_frame_points(np_shape) * itemsize,
        refills=0.0,
        tile_count=tiles,
        parallel_width=width,
        reduction_strips=strips,
        intermediate=False,
    )
    return [feature], (1 if demoted else 0)


# ---------------------------------------------------------------------------
# Scoring
# ---------------------------------------------------------------------------


def score_features(features: Sequence[StageFeatures],
                   backend: str | None = None) -> float:
    """Total modelled cost of one candidate (lower is better).

    ``backend`` selects the per-tile dispatch weight
    (:func:`tile_dispatch_cost`); all other terms are backend-independent.
    """
    dispatch = tile_dispatch_cost(backend)
    total = 0.0
    for f in features:
        compute = f.points * f.work_per_point * COST_POINT
        if f.parallel_width > 1.0:
            compute /= 1.0 + PARALLEL_EFFICIENCY * (f.parallel_width - 1.0)
            compute += f.tile_count * COST_TASK_SPAWN
        total += compute
        if f.intermediate:
            weight = MEM_WEIGHT if f.resident_bytes > CACHE_RESIDENT_BYTES \
                else CACHE_WEIGHT
            total += f.points * f.bytes_per_point * weight
        total += f.tile_count * dispatch
        total += f.refills * COST_SCRATCH_REFILL
        if f.reduction_strips > 1.0:
            # Each partial accumulator is merged serially element by element.
            total += f.reduction_strips * (f.resident_bytes
                                           / max(f.bytes_per_point, 1.0)) \
                * MERGE_WEIGHT
    return total


def rank_pipeline_candidates(pipeline, frame_shape: Sequence[int],
                             candidates: Sequence[Sequence[Schedule]],
                             backend: str | None = None
                             ) -> list[CandidateScore]:
    """Score per-stage schedule assignments; best (lowest) first.

    The pipeline's own schedules are saved and restored around the scoring,
    so ranking has no observable effect on the pipeline.  ``backend``
    selects the per-tile dispatch weight.
    """
    saved = [stage.func.schedule for stage in pipeline.stages]
    scores: list[CandidateScore] = []
    try:
        for index, schedules in enumerate(candidates):
            for stage, schedule in zip(pipeline.stages, schedules):
                stage.func.schedule = schedule
            features, demotions = extract_pipeline_features(pipeline,
                                                            frame_shape)
            scores.append(CandidateScore(
                index=index,
                describe=tuple(s.describe() for s in schedules),
                cost=score_features(features, backend),
                demotions=demotions,
                features=tuple(features)))
    finally:
        for stage, schedule in zip(pipeline.stages, saved):
            stage.func.schedule = schedule
    return sorted(scores, key=lambda s: s.sort_key)


def rank_func_candidates(func: Func, np_shape: Sequence[int],
                         candidates: Sequence[Schedule],
                         buffers=None,
                         backend: str | None = None) -> list[CandidateScore]:
    """Single-Func analogue of :func:`rank_pipeline_candidates`."""
    saved = func.schedule
    scores: list[CandidateScore] = []
    try:
        for index, schedule in enumerate(candidates):
            func.schedule = schedule
            features, demotions = extract_func_features(func, np_shape,
                                                        buffers)
            scores.append(CandidateScore(
                index=index,
                describe=(schedule.describe(),),
                cost=score_features(features, backend),
                demotions=demotions,
                features=tuple(features)))
    finally:
        func.schedule = saved
    return sorted(scores, key=lambda s: s.sort_key)
