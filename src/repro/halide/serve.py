"""Batched realization service: compile once, serve many requests.

The lifted kernels are small relative to the frames they process, so a
serving workload (many frames/requests through one pipeline) is dominated by
per-frame NumPy work — exactly the work that releases the GIL.  This module
provides the throughput layer the ROADMAP asks for:

* :class:`PipelineServer` wraps one compiled target — a
  :class:`~repro.halide.func.Func` or a
  :class:`~repro.halide.pipeline.FuncPipeline` — compiles its kernels once up
  front, and fans incoming requests out across the shared worker pool from
  :mod:`repro.halide.parallel` with **bounded queueing**: ``submit`` blocks
  once ``max_pending`` requests are in flight, so an overloaded producer
  cannot grow the queue without bound.
* :func:`realize_batch` is the one-shot convenience: hand it a target and a
  list of requests, get every output plus per-request timing stats back.

Requests running inside pool workers realize their tiles serially (the pool
never feeds itself; see :func:`repro.halide.parallel.in_worker`), so batch
parallelism and tile parallelism compose without deadlock: one frame at a
time uses tile-parallel kernels, many frames at a time parallelize across
requests instead.

Resilience (see ``docs/reliability.md``): ``submit(..., deadline=, retries=)``
enforces a per-request wall-clock budget — the future resolves with
:class:`~repro.reliability.policy.DeadlineExceeded` instead of hanging — and
retries transient failures with bounded backoff.  Because the interpreter
oracle is bit-identical to the compiled engine, a compiled failure *degrades*
rather than fails: the request re-runs on the interp backend, ``stats()``
counts it under ``degraded``, and after ``breaker_threshold`` consecutive
compiled failures a circuit breaker routes requests straight to the slow
path until a recovery probe succeeds.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from concurrent.futures import Future, InvalidStateError

from ..reliability.faults import fault_point
from ..reliability.policy import (
    BatchError,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    DegradedResult,
    RetryPolicy,
    TRANSIENT,
    classify_failure,
)
from .compile import compile_func
from .func import Func
from .parallel import in_worker, parallel_enabled, pool_size, submit_task
from .pipeline import FuncPipeline
from .realize import get_default_engine, realize


@dataclass
class BatchResult:
    """Outputs and timing of one :func:`realize_batch` call.

    ``outputs`` is in request order; ``request_seconds[i]`` is the busy time
    of request ``i`` alone (as measured inside its worker), while
    ``wall_seconds`` is the whole batch end to end — on a multicore pool the
    sum of ``request_seconds`` exceeds ``wall_seconds`` because requests
    overlap.

    ``errors`` is aligned with ``outputs``: ``None`` for a request that
    succeeded, the raising exception for one that failed (its output slot
    holds ``None``).  A batch with any error raises
    :class:`~repro.reliability.policy.BatchError` *after* every request has
    been collected — one failing request no longer abandons the rest.
    """

    outputs: list = field(default_factory=list)
    request_seconds: list = field(default_factory=list)
    wall_seconds: float = 0.0
    errors: list = field(default_factory=list)

    @property
    def failed(self) -> int:
        """How many requests of this batch raised."""
        return sum(1 for error in self.errors if error is not None)

    @property
    def frames_per_second(self) -> float:
        """Sustained throughput of the batch (requests / wall time)."""
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.outputs) / self.wall_seconds


class _ExpiryScheduler:
    """One daemon thread firing deadline expiries for every server.

    ``schedule(expires_at, callback)`` pushes onto a heap and wakes the
    sentinel; the sentinel sleeps until the earliest expiry, fires its
    callback, and parks again.  Cancellation just flags the entry — stale
    heap items are skipped when popped, so cancel is O(1) and requests that
    finish in time (the overwhelmingly common case) pay one heap push plus
    one notify.  A ``threading.Timer`` per request would instead spawn and
    join a thread per submit, dominating the cost of the deadline feature.
    """

    _EXPIRES_AT, _CALLBACK, _CANCELLED = 0, 1, 2

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._heap: list = []
        self._seq = 0
        self._thread: threading.Thread | None = None
        self._wake_at: float | None = None

    def schedule(self, expires_at: float, callback) -> list:
        entry = [expires_at, callback, False]
        with self._cond:
            self._seq += 1
            heapq.heappush(self._heap, (expires_at, self._seq, entry))
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run, daemon=True,
                    name="repro-deadline-sentinel")
                self._thread.start()
            # Wake the sentinel only when this expiry is sooner than what it
            # is already sleeping toward — the common case (a batch of
            # same-budget requests) schedules with zero context switches.
            if self._wake_at is None or expires_at < self._wake_at:
                self._cond.notify()
        return entry

    @classmethod
    def cancel(cls, entry: list) -> None:
        entry[cls._CANCELLED] = True

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._heap:
                    self._wake_at = None
                    self._cond.wait()
                expires_at = self._heap[0][0]
                wait = expires_at - time.monotonic()
                if wait > 0:
                    self._wake_at = expires_at
                    self._cond.wait(wait)
                    continue
                _, _, entry = heapq.heappop(self._heap)
            if entry[self._CANCELLED]:
                continue
            try:
                entry[self._CALLBACK]()
            except Exception:            # an expiry must never kill the clock
                pass


_EXPIRIES = _ExpiryScheduler()


class PipelineServer:
    """Serve many realization requests for one Func or FuncPipeline.

    Compiles the target's kernels exactly once at construction (so no request
    ever pays codegen), then executes each submitted request on the shared
    worker pool.  Each future resolves to an ``(output, seconds)`` pair —
    the realized array plus that request's busy time.  Use as a context
    manager, or call :meth:`close` when done::

        with PipelineServer(pipeline.fused(), max_pending=8) as server:
            futures = [server.submit(image=frame) for frame in frames]
            results = [f.result()[0] for f in futures]
            print(server.stats())

    ``max_pending`` bounds the number of requests admitted but not yet
    finished; further ``submit`` calls block until a slot frees.  It defaults
    to twice the pool size — enough to keep every worker busy while the
    producer prepares the next frame, small enough to bound memory.
    """

    def __init__(self, target: Func | FuncPipeline, *,
                 max_pending: int | None = None,
                 engine: str | None = None,
                 frame_shape: tuple[int, ...] | None = None,
                 warm_start: bool = True,
                 store=None,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 5.0) -> None:
        if not isinstance(target, (Func, FuncPipeline)):
            raise TypeError(f"cannot serve {type(target).__name__}; "
                            "expected Func or FuncPipeline")
        self.target = target
        self.engine = engine
        self.max_pending = max_pending if max_pending is not None \
            else 2 * pool_size()
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self._slots = threading.BoundedSemaphore(self.max_pending)
        self._lock = threading.Lock()
        self._closed = False
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        self._stats = {"submitted": 0, "completed": 0, "failed": 0,
                       "busy_seconds": 0.0, "retries": 0, "degraded": 0,
                       "deadline_exceeded": 0}
        #: Trips after N consecutive compiled-path failures (each of which
        #: degraded to a successful interp run); while open, requests skip
        #: the compiled attempt entirely and probe recovery after cooldown.
        self._breaker = CircuitBreaker(threshold=breaker_threshold,
                                       cooldown=breaker_cooldown)
        #: True when a persisted tuning record supplied the schedules this
        #: server compiled with (zero timed candidate evaluations).
        self.warm_started = False
        if warm_start and frame_shape is not None:
            self.warm_started = self._warm_start(tuple(frame_shape), store)
        self._warm_compile(frame_shape)

    def _warm_start(self, frame_shape: tuple[int, ...], store) -> bool:
        """Apply this machine's best known schedules before compiling.

        Consults the persistent tuning database
        (:mod:`repro.halide.tuningdb`) for this target + frame shape; a hit
        replaces the target's schedules with the measured winner at zero
        timing cost.  Any miss — no record, foreign machine, corrupt blob —
        leaves the target's current schedules untouched, and a broken store
        must never break serving.
        """
        try:
            from .tuningdb import warm_start_func, warm_start_pipeline

            if isinstance(self.target, FuncPipeline):
                record = warm_start_pipeline(self.target, frame_shape,
                                             store=store)
            else:
                record = warm_start_func(self.target, frame_shape,
                                         store=store)
        except Exception:
            return False
        return record is not None

    # -- lifecycle -----------------------------------------------------------

    def _warm_compile(self, frame_shape: tuple[int, ...] | None) -> None:
        """Pay codegen up front so the serving path never compiles.

        A :class:`FuncPipeline` with explicitly scheduled stages executes
        through the lowered loop-nest IR, whose store kernels depend on the
        frame shape; pass ``frame_shape`` (NumPy order) to lower and compile
        them here too, otherwise they compile (once) on the first request.
        """
        engine = self.engine if self.engine is not None else get_default_engine()
        if engine == "interp":
            return
        if frame_shape is not None and isinstance(self.target, FuncPipeline) \
                and self.target.uses_lowering():
            from ..ir import ReduceLoop, Store
            from .lower import PipelineLoweringError

            try:
                lowered = self.target.lower(tuple(frame_shape))
            except PipelineLoweringError:
                lowered = None               # legacy fallback: warm below
            if lowered is not None:
                # The lowered executor only runs store kernels and reduction
                # update sweeps; the per-stage whole-Func kernels would be
                # dead weight.
                for node in lowered.stmt.walk():
                    if isinstance(node, (ReduceLoop, Store)):
                        compile_func(node.func)
                return
        funcs = [self.target] if isinstance(self.target, Func) \
            else [stage.func for stage in self.target.stages]
        for func in funcs:
            compile_func(func)

    def close(self, wait: bool = False) -> None:
        """Refuse further submissions (in-flight requests still finish).

        The closed flag is written under the server lock, and ``submit``
        re-checks it both before admission and *after* acquiring a pending
        slot — so a submit that was already blocked on the slot semaphore
        when ``close`` ran raises instead of slipping a request into a
        closed server (the race the unguarded flag allowed).

        ``close(wait=True)`` additionally blocks until every in-flight
        request has finished, so resources the requests use can be torn
        down safely afterwards.  Do not call it from inside a request (it
        would wait on itself).
        """
        with self._lock:
            self._closed = True
            if wait:
                while self._inflight:
                    self._idle.wait()

    def __enter__(self) -> "PipelineServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serving -------------------------------------------------------------

    def submit(self, *, image: np.ndarray | None = None,
               shape: tuple[int, ...] | None = None,
               buffers: Mapping[str, np.ndarray] | None = None,
               params: Mapping[str, float] | None = None,
               deadline: "Deadline | float | None" = None,
               retries: "RetryPolicy | int | None" = None):
        """Submit one request; the future resolves to ``(output, seconds)``.

        For a :class:`FuncPipeline` target pass ``image`` (and optionally
        ``params``); for a :class:`Func` target pass ``shape`` and
        ``buffers`` (and optionally ``params``).  Blocks while ``max_pending``
        requests are already in flight (bounded queueing).

        ``deadline`` (seconds, or a :class:`~repro.reliability.policy.Deadline`)
        starts *now*, so it covers queue wait too; when it expires the future
        resolves with :class:`~repro.reliability.policy.DeadlineExceeded` even
        if the underlying work is stuck.  ``retries`` (a count or a
        :class:`~repro.reliability.policy.RetryPolicy`) re-runs transient
        failures with bounded backoff before the degradation ladder engages.

        A submit issued from inside a pool worker (a served request that
        itself serves) executes inline instead of queueing: queued behind its
        own parent it could never run, deadlocking the bounded pool — the
        same never-feed-yourself policy the tile executor follows.  The
        ``REPRO_PARALLEL=0`` kill switch also forces inline execution, so it
        really does serialize the whole stack, serving included.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("PipelineServer is closed")
        deadline = Deadline.coerce(deadline)
        if isinstance(retries, int):
            retries = RetryPolicy(retries=retries)
        task = self._make_task(image=image, shape=shape, buffers=buffers,
                               params=params)
        if in_worker() or not parallel_enabled():
            return self._run_inline(task, deadline, retries)
        self._slots.acquire()
        with self._lock:
            # Re-check after the (possibly long) slot wait: a submit blocked
            # on admission must not slip past a concurrent close().
            if self._closed:
                self._slots.release()
                raise RuntimeError("PipelineServer is closed")
            self._stats["submitted"] += 1
            self._inflight += 1
        # Any failure to hand the task to the pool — including
        # KeyboardInterrupt — must give back the slot and the inflight
        # count; the finally-based unwind does that without a blanket
        # ``except BaseException`` swallowing the distinction.
        submitted = False
        try:
            future = submit_task(self._run_request, task, deadline, retries)
            submitted = True
        finally:
            if not submitted:
                self._finish_one()
                self._slots.release()
        future.add_done_callback(self._on_done)
        if deadline is None:
            return future
        return self._with_deadline(future, deadline)

    def realize_batch(self, requests: Sequence, *,
                      deadline: "Deadline | float | None" = None,
                      retries: "RetryPolicy | int | None" = None
                      ) -> BatchResult:
        """Realize every request and collect outputs + timing, in order.

        Each request is a mapping of :meth:`submit` keyword arguments (for a
        pipeline target, a bare array is also accepted as shorthand for
        ``{"image": array}``).  ``deadline`` is a *per-request* budget
        (seconds), started at that request's submission.

        Every request is collected before the batch reports: a raising
        request records its error in ``BatchResult.errors`` (its output slot
        is ``None``) instead of aborting the loop and abandoning the
        remaining futures.  If any request failed, one summarizing
        :class:`~repro.reliability.policy.BatchError` is raised at the end,
        carrying the full :class:`BatchResult` as ``error.result``.
        """
        wall_start = time.perf_counter()
        # A Deadline instance is a fixed expiry; per-request budgets restart
        # at each submission, so carry the raw seconds through submit().
        budget = deadline.seconds if isinstance(deadline, Deadline) \
            else deadline
        futures: list = []
        submit_errors: list = []
        for request in requests:
            if isinstance(request, np.ndarray):
                request = {"image": request}
            try:
                futures.append(self.submit(**request, deadline=budget,
                                           retries=retries))
                submit_errors.append(None)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                futures.append(None)
                submit_errors.append(exc)
        result = BatchResult()
        for future, submit_error in zip(futures, submit_errors):
            if future is None:
                result.outputs.append(None)
                result.request_seconds.append(0.0)
                result.errors.append(submit_error)
                continue
            try:
                output, seconds = future.result()
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                result.outputs.append(None)
                result.request_seconds.append(0.0)
                result.errors.append(exc)
            else:
                result.outputs.append(output)
                result.request_seconds.append(seconds)
                result.errors.append(None)
        result.wall_seconds = time.perf_counter() - wall_start
        if result.failed:
            first = next(error for error in result.errors if error is not None)
            raise BatchError(
                f"{result.failed}/{len(result.outputs)} batch request(s) "
                f"failed; first error: {type(first).__name__}: {first}",
                result=result)
        return result

    def stats(self) -> dict:
        """A snapshot of serving counters.

        ``submitted`` / ``completed`` / ``failed`` count requests;
        ``busy_seconds`` is total per-request busy time (across workers, so
        it can exceed wall time); ``mean_request_seconds`` averages over
        completed requests.  Resilience counters: ``retries`` (transient
        re-attempts), ``degraded`` (requests served by the interp slow path
        after a compiled failure or while the breaker is open),
        ``deadline_exceeded``, and the circuit breaker's ``breaker_state`` /
        ``breaker_trips``.
        """
        with self._lock:
            snapshot = dict(self._stats)
        completed = snapshot["completed"]
        snapshot["mean_request_seconds"] = (
            snapshot["busy_seconds"] / completed if completed else 0.0)
        snapshot["max_pending"] = self.max_pending
        breaker = self._breaker.snapshot()
        snapshot["breaker_state"] = breaker["state"]
        snapshot["breaker_trips"] = breaker["trips"]
        return snapshot

    # -- internals -----------------------------------------------------------

    def _make_task(self, *, image, shape, buffers, params):
        """One request as ``task(engine=None)``.

        ``engine`` overrides the server's engine for that one execution —
        the degradation ladder uses it to re-run a failed compiled request
        on the bit-identical interp oracle.
        """
        params = dict(params) if params else {}
        if isinstance(self.target, FuncPipeline):
            if image is None:
                raise ValueError("a FuncPipeline request needs image=...")
            return lambda engine=None: self.target.realize(
                image, params, engine=engine or self.engine)
        if shape is None or buffers is None:
            raise ValueError("a Func request needs shape=... and buffers=...")
        return lambda engine=None: realize(self.target, shape, buffers,
                                           params,
                                           engine=engine or self.engine)

    def _run_request(self, task, deadline=None, retry=None):
        """Run one request, recording its outcome in the counters.

        The accounting happens here — before the future's result becomes
        visible — so ``stats()`` read right after ``future.result()`` is
        never behind (done-callbacks run *after* waiters are released).
        ``KeyboardInterrupt``/``SystemExit`` propagate *without* counting as
        a request failure: Ctrl-C is the operator stopping the process, not
        the request going wrong.
        """
        start = time.perf_counter()
        try:
            result = self._execute_guarded(task, deadline, retry)
        except Exception:
            # deadline_exceeded is counted where the caller-visible future
            # resolves (_resolve / _run_inline), never here — the timer and
            # the in-task check may both observe the same expiry.
            with self._lock:
                self._stats["failed"] += 1
            raise
        seconds = time.perf_counter() - start
        if isinstance(result, DegradedResult):
            output = result.value
            with self._lock:
                self._stats["degraded"] += 1
        else:
            output = result
        with self._lock:
            self._stats["completed"] += 1
            self._stats["busy_seconds"] += seconds
        return output, seconds

    def _execute_guarded(self, task, deadline, retry):
        """One request through the resilience ladder.

        1. Injected latency (the ``serve.latency`` fault site), capped at
           the deadline so a "stuck worker" still resolves in budget.
        2. The fast path (the server's engine), retrying failures classified
           transient up to ``retry``'s budget with deadline-capped backoff.
        3. Degradation: if the effective engine is compiled and it keeps
           failing — or the circuit breaker is already open — re-run on the
           interpreter oracle, which is bit-identical by construction.
           Success there returns a :class:`DegradedResult` and counts a
           breaker failure; success on the fast path resets the breaker.
        """
        self._injected_latency(deadline)
        if deadline is not None:
            deadline.check("request")
        degradable = (self.engine or get_default_engine()) != "interp"
        if degradable and not self._breaker.allow():
            return DegradedResult(task(engine="interp"),
                                  reason="circuit breaker open")
        attempt = 0
        retries = retry.retries if retry is not None else 0
        while True:
            if deadline is not None:
                deadline.check("request")
            try:
                output = task()
            except (KeyboardInterrupt, SystemExit):
                raise
            except DeadlineExceeded:
                raise
            except Exception as exc:
                kind = classify_failure(exc)
                if kind == TRANSIENT and attempt < retries:
                    attempt += 1
                    with self._lock:
                        self._stats["retries"] += 1
                    wait = retry.delay(attempt)
                    if deadline is not None and wait >= deadline.remaining():
                        raise DeadlineExceeded(
                            f"deadline exhausted after {attempt} "
                            f"attempt(s)") from exc
                    if wait:
                        time.sleep(wait)
                    continue
                if kind == "fatal" or not degradable:
                    raise
                # Transient budget exhausted, or the compiled path cannot
                # realize this request: degrade to the interp oracle.
                if deadline is not None:
                    deadline.check("degraded fallback")
                try:
                    output = task(engine="interp")
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception:
                    # Both engines failed: the request itself is bad — the
                    # breaker only tracks *compiled-specific* failures.
                    raise exc
                self._breaker.record_failure()
                return DegradedResult(
                    output, reason=f"{type(exc).__name__}: {exc}",
                    attempts=attempt + 2)
            if degradable:
                self._breaker.record_success()
            return output

    def _injected_latency(self, deadline) -> None:
        """The ``serve.latency`` fault site, deadline-capped.

        A scheduled latency longer than the remaining budget sleeps only to
        the deadline's edge — the ensuing ``check`` raises, which is exactly
        the "stuck worker resolves with a typed error, not a hang" contract.
        """
        if deadline is None:
            fault_point("serve.latency")
            return
        from ..reliability.faults import active_plan

        plan = active_plan()
        if plan is None:
            return
        rule = plan.fire("serve.latency")
        if rule is not None and rule.latency > 0:
            time.sleep(min(rule.latency, deadline.remaining()))

    def _with_deadline(self, inner: Future, deadline: Deadline) -> Future:
        """Wrap a pool future so it *resolves* at the deadline, no matter what.

        The wrapper mirrors the inner future's outcome; if the deadline
        fires first, the inner future is cancelled when still queued and the
        wrapper resolves with :class:`DeadlineExceeded` even when the worker
        is stuck — the caller never hangs on ``result()``.  Expiries are
        scheduled on one shared sentinel thread (:class:`_ExpiryScheduler`)
        rather than a ``threading.Timer`` each — a per-request thread spawn
        would be most of the deadline feature's cost.
        """
        wrapper: Future = Future()
        entry = _EXPIRIES.schedule(
            deadline.expires_at,
            lambda: self._expire(wrapper, inner, deadline))

        def chain(done: Future) -> None:
            _ExpiryScheduler.cancel(entry)
            if done.cancelled():
                self._resolve(wrapper, exception=DeadlineExceeded(
                    f"request cancelled at its {deadline.seconds:.3f}s "
                    f"deadline"))
                return
            error = done.exception()
            if error is not None:
                self._resolve(wrapper, exception=error)
            else:
                self._resolve(wrapper, result=done.result())

        inner.add_done_callback(chain)
        return wrapper

    def _expire(self, wrapper: Future, inner: Future,
                deadline: Deadline) -> None:
        inner.cancel()               # a still-queued request never runs
        self._resolve(wrapper, exception=DeadlineExceeded(
            f"request exceeded its {deadline.seconds:.3f}s deadline"))

    def _resolve(self, future: Future, *, result=None,
                 exception=None) -> bool:
        """First writer wins; late resolutions are dropped silently."""
        try:
            if exception is not None:
                future.set_exception(exception)
            else:
                future.set_result(result)
        except InvalidStateError:
            return False
        if isinstance(exception, DeadlineExceeded):
            with self._lock:
                self._stats["deadline_exceeded"] += 1
        return True

    def _run_inline(self, task, deadline=None, retry=None) -> Future:
        """Execute immediately on the calling (worker) thread.

        Bypasses the pending-slot semaphore — an inline request occupies no
        queue slot, and blocking a worker on admission could deadlock against
        the very requests holding the slots.  ``KeyboardInterrupt`` /
        ``SystemExit`` propagate to the caller (they are not request
        outcomes) while the ``finally`` still rebalances the inflight count.
        """
        future: Future = Future()
        with self._lock:
            # Same re-check the pooled path makes when taking its slot: a
            # close() that ran after submit()'s entry check must win, or
            # close(wait=True) could return while this request still runs.
            if self._closed:
                raise RuntimeError("PipelineServer is closed")
            self._stats["submitted"] += 1
            self._inflight += 1
        try:
            result = self._run_request(task, deadline, retry)
        except Exception as exc:
            self._resolve(future, exception=exc)
        else:
            future.set_result(result)
        finally:
            self._finish_one()
        return future

    def _finish_one(self) -> None:
        """One request left flight; wake a ``close(wait=True)`` drainer."""
        with self._lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def _on_done(self, future) -> None:
        self._slots.release()
        if future.cancelled():
            # A cancelled request never ran _run_request, so count it here.
            with self._lock:
                self._stats["failed"] += 1
        self._finish_one()


def realize_batch(target: Func | FuncPipeline, requests: Sequence, *,
                  max_pending: int | None = None,
                  engine: str | None = None,
                  deadline: "Deadline | float | None" = None,
                  retries: "RetryPolicy | int | None" = None) -> BatchResult:
    """Compile ``target`` once and realize every request across the pool.

    The one-shot form of :class:`PipelineServer` — see its docs for the
    request format.  Returns a :class:`BatchResult` with outputs in request
    order, per-request busy times and the batch's sustained frames/sec.
    ``deadline`` (per-request seconds) and ``retries`` engage the resilience
    ladder documented on :meth:`PipelineServer.submit`.
    """
    with PipelineServer(target, max_pending=max_pending,
                        engine=engine) as server:
        return server.realize_batch(requests, deadline=deadline,
                                    retries=retries)
