"""Batched realization service: compile once, serve many requests.

The lifted kernels are small relative to the frames they process, so a
serving workload (many frames/requests through one pipeline) is dominated by
per-frame NumPy work — exactly the work that releases the GIL.  This module
provides the throughput layer the ROADMAP asks for:

* :class:`PipelineServer` wraps one compiled target — a
  :class:`~repro.halide.func.Func` or a
  :class:`~repro.halide.pipeline.FuncPipeline` — compiles its kernels once up
  front, and fans incoming requests out across the shared worker pool from
  :mod:`repro.halide.parallel` with **bounded queueing**: ``submit`` blocks
  once ``max_pending`` requests are in flight, so an overloaded producer
  cannot grow the queue without bound.
* :func:`realize_batch` is the one-shot convenience: hand it a target and a
  list of requests, get every output plus per-request timing stats back.

Requests running inside pool workers realize their tiles serially (the pool
never feeds itself; see :func:`repro.halide.parallel.in_worker`), so batch
parallelism and tile parallelism compose without deadlock: one frame at a
time uses tile-parallel kernels, many frames at a time parallelize across
requests instead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from concurrent.futures import Future

from .compile import compile_func
from .func import Func
from .parallel import in_worker, parallel_enabled, pool_size, submit_task
from .pipeline import FuncPipeline
from .realize import get_default_engine, realize


@dataclass
class BatchResult:
    """Outputs and timing of one :func:`realize_batch` call.

    ``outputs`` is in request order; ``request_seconds[i]`` is the busy time
    of request ``i`` alone (as measured inside its worker), while
    ``wall_seconds`` is the whole batch end to end — on a multicore pool the
    sum of ``request_seconds`` exceeds ``wall_seconds`` because requests
    overlap.
    """

    outputs: list = field(default_factory=list)
    request_seconds: list = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def frames_per_second(self) -> float:
        """Sustained throughput of the batch (requests / wall time)."""
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.outputs) / self.wall_seconds


class PipelineServer:
    """Serve many realization requests for one Func or FuncPipeline.

    Compiles the target's kernels exactly once at construction (so no request
    ever pays codegen), then executes each submitted request on the shared
    worker pool.  Each future resolves to an ``(output, seconds)`` pair —
    the realized array plus that request's busy time.  Use as a context
    manager, or call :meth:`close` when done::

        with PipelineServer(pipeline.fused(), max_pending=8) as server:
            futures = [server.submit(image=frame) for frame in frames]
            results = [f.result()[0] for f in futures]
            print(server.stats())

    ``max_pending`` bounds the number of requests admitted but not yet
    finished; further ``submit`` calls block until a slot frees.  It defaults
    to twice the pool size — enough to keep every worker busy while the
    producer prepares the next frame, small enough to bound memory.
    """

    def __init__(self, target: Func | FuncPipeline, *,
                 max_pending: int | None = None,
                 engine: str | None = None,
                 frame_shape: tuple[int, ...] | None = None) -> None:
        if not isinstance(target, (Func, FuncPipeline)):
            raise TypeError(f"cannot serve {type(target).__name__}; "
                            "expected Func or FuncPipeline")
        self.target = target
        self.engine = engine
        self.max_pending = max_pending if max_pending is not None \
            else 2 * pool_size()
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self._slots = threading.BoundedSemaphore(self.max_pending)
        self._lock = threading.Lock()
        self._closed = False
        self._inflight = 0
        self._idle = threading.Condition(self._lock)
        self._stats = {"submitted": 0, "completed": 0, "failed": 0,
                       "busy_seconds": 0.0}
        self._warm_compile(frame_shape)

    # -- lifecycle -----------------------------------------------------------

    def _warm_compile(self, frame_shape: tuple[int, ...] | None) -> None:
        """Pay codegen up front so the serving path never compiles.

        A :class:`FuncPipeline` with explicitly scheduled stages executes
        through the lowered loop-nest IR, whose store kernels depend on the
        frame shape; pass ``frame_shape`` (NumPy order) to lower and compile
        them here too, otherwise they compile (once) on the first request.
        """
        engine = self.engine if self.engine is not None else get_default_engine()
        if engine == "interp":
            return
        if frame_shape is not None and isinstance(self.target, FuncPipeline) \
                and self.target.uses_lowering():
            from ..ir import ReduceLoop, Store
            from .lower import PipelineLoweringError

            try:
                lowered = self.target.lower(tuple(frame_shape))
            except PipelineLoweringError:
                lowered = None               # legacy fallback: warm below
            if lowered is not None:
                # The lowered executor only runs store kernels and reduction
                # update sweeps; the per-stage whole-Func kernels would be
                # dead weight.
                for node in lowered.stmt.walk():
                    if isinstance(node, (ReduceLoop, Store)):
                        compile_func(node.func)
                return
        funcs = [self.target] if isinstance(self.target, Func) \
            else [stage.func for stage in self.target.stages]
        for func in funcs:
            compile_func(func)

    def close(self, wait: bool = False) -> None:
        """Refuse further submissions (in-flight requests still finish).

        The closed flag is written under the server lock, and ``submit``
        re-checks it both before admission and *after* acquiring a pending
        slot — so a submit that was already blocked on the slot semaphore
        when ``close`` ran raises instead of slipping a request into a
        closed server (the race the unguarded flag allowed).

        ``close(wait=True)`` additionally blocks until every in-flight
        request has finished, so resources the requests use can be torn
        down safely afterwards.  Do not call it from inside a request (it
        would wait on itself).
        """
        with self._lock:
            self._closed = True
            if wait:
                while self._inflight:
                    self._idle.wait()

    def __enter__(self) -> "PipelineServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serving -------------------------------------------------------------

    def submit(self, *, image: np.ndarray | None = None,
               shape: tuple[int, ...] | None = None,
               buffers: Mapping[str, np.ndarray] | None = None,
               params: Mapping[str, float] | None = None):
        """Submit one request; the future resolves to ``(output, seconds)``.

        For a :class:`FuncPipeline` target pass ``image`` (and optionally
        ``params``); for a :class:`Func` target pass ``shape`` and
        ``buffers`` (and optionally ``params``).  Blocks while ``max_pending``
        requests are already in flight (bounded queueing).

        A submit issued from inside a pool worker (a served request that
        itself serves) executes inline instead of queueing: queued behind its
        own parent it could never run, deadlocking the bounded pool — the
        same never-feed-yourself policy the tile executor follows.  The
        ``REPRO_PARALLEL=0`` kill switch also forces inline execution, so it
        really does serialize the whole stack, serving included.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("PipelineServer is closed")
        task = self._make_task(image=image, shape=shape, buffers=buffers,
                               params=params)
        if in_worker() or not parallel_enabled():
            return self._run_inline(task)
        self._slots.acquire()
        with self._lock:
            # Re-check after the (possibly long) slot wait: a submit blocked
            # on admission must not slip past a concurrent close().
            if self._closed:
                self._slots.release()
                raise RuntimeError("PipelineServer is closed")
            self._stats["submitted"] += 1
            self._inflight += 1
        try:
            future = submit_task(self._run_request, task)
        except BaseException:
            self._finish_one()
            self._slots.release()
            raise
        future.add_done_callback(self._on_done)
        return future

    def realize_batch(self, requests: Sequence) -> BatchResult:
        """Realize every request and collect outputs + timing, in order.

        Each request is a mapping of :meth:`submit` keyword arguments (for a
        pipeline target, a bare array is also accepted as shorthand for
        ``{"image": array}``).
        """
        wall_start = time.perf_counter()
        futures = []
        for request in requests:
            if isinstance(request, np.ndarray):
                request = {"image": request}
            futures.append(self.submit(**request))
        result = BatchResult()
        for future in futures:
            output, seconds = future.result()
            result.outputs.append(output)
            result.request_seconds.append(seconds)
        result.wall_seconds = time.perf_counter() - wall_start
        return result

    def stats(self) -> dict:
        """A snapshot of serving counters.

        ``submitted`` / ``completed`` / ``failed`` count requests;
        ``busy_seconds`` is total per-request busy time (across workers, so
        it can exceed wall time); ``mean_request_seconds`` averages over
        completed requests.
        """
        with self._lock:
            snapshot = dict(self._stats)
        completed = snapshot["completed"]
        snapshot["mean_request_seconds"] = (
            snapshot["busy_seconds"] / completed if completed else 0.0)
        snapshot["max_pending"] = self.max_pending
        return snapshot

    # -- internals -----------------------------------------------------------

    def _make_task(self, *, image, shape, buffers, params):
        params = dict(params) if params else {}
        if isinstance(self.target, FuncPipeline):
            if image is None:
                raise ValueError("a FuncPipeline request needs image=...")
            return lambda: self.target.realize(image, params, engine=self.engine)
        if shape is None or buffers is None:
            raise ValueError("a Func request needs shape=... and buffers=...")
        return lambda: realize(self.target, shape, buffers, params,
                               engine=self.engine)

    def _run_request(self, task):
        """Run one request, recording its outcome in the counters.

        The accounting happens here — before the future's result becomes
        visible — so ``stats()`` read right after ``future.result()`` is
        never behind (done-callbacks run *after* waiters are released).
        """
        start = time.perf_counter()
        try:
            output = task()
        except BaseException:
            with self._lock:
                self._stats["failed"] += 1
            raise
        seconds = time.perf_counter() - start
        with self._lock:
            self._stats["completed"] += 1
            self._stats["busy_seconds"] += seconds
        return output, seconds

    def _run_inline(self, task) -> Future:
        """Execute immediately on the calling (worker) thread.

        Bypasses the pending-slot semaphore — an inline request occupies no
        queue slot, and blocking a worker on admission could deadlock against
        the very requests holding the slots.
        """
        future: Future = Future()
        with self._lock:
            # Same re-check the pooled path makes when taking its slot: a
            # close() that ran after submit()'s entry check must win, or
            # close(wait=True) could return while this request still runs.
            if self._closed:
                raise RuntimeError("PipelineServer is closed")
            self._stats["submitted"] += 1
            self._inflight += 1
        try:
            result = self._run_request(task)
        except BaseException as exc:
            future.set_exception(exc)
        else:
            future.set_result(result)
        finally:
            self._finish_one()
        return future

    def _finish_one(self) -> None:
        """One request left flight; wake a ``close(wait=True)`` drainer."""
        with self._lock:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def _on_done(self, future) -> None:
        self._slots.release()
        if future.cancelled():
            # A cancelled request never ran _run_request, so count it here.
            with self._lock:
                self._stats["failed"] += 1
        self._finish_one()


def realize_batch(target: Func | FuncPipeline, requests: Sequence, *,
                  max_pending: int | None = None,
                  engine: str | None = None) -> BatchResult:
    """Compile ``target`` once and realize every request across the pool.

    The one-shot form of :class:`PipelineServer` — see its docs for the
    request format.  Returns a :class:`BatchResult` with outputs in request
    order, per-request busy times and the batch's sustained frames/sec.
    """
    with PipelineServer(target, max_pending=max_pending,
                        engine=engine) as server:
        return server.realize_batch(requests)
