"""Record types produced by the instrumentation tools.

These are the dynamically-captured artifacts of Figure 1 in the paper: code
coverage sets, basic-block profiles, memory traces, instruction traces and
page-granularity memory dumps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..x86.emulator import MemoryAccess
from ..x86.instructions import Instruction


@dataclass(frozen=True)
class MemoryTraceRecord:
    """One entry of the (coarse) memory trace collected during localization.

    Matches section 3.1: instruction address, absolute memory address, access
    width and direction.
    """

    instruction_address: int
    address: int
    width: int
    is_write: bool


@dataclass
class BlockProfile:
    """Basic-block execution profile collected during the screening run."""

    counts: dict[int, int] = field(default_factory=dict)
    predecessors: dict[int, set[int]] = field(default_factory=dict)
    call_targets: dict[int, int] = field(default_factory=dict)
    #: Dynamic containing-function assignment: block address -> function entry.
    block_function: dict[int, int] = field(default_factory=dict)

    def blocks(self) -> set[int]:
        return set(self.counts)


@dataclass
class TraceRecord:
    """One dynamic instruction in the detailed trace (section 4.1)."""

    index: int
    instruction: Instruction
    accesses: tuple[MemoryAccess, ...]

    @property
    def address(self) -> int:
        return self.instruction.address

    @property
    def mnemonic(self) -> str:
        return self.instruction.mnemonic


@dataclass
class InstructionTrace:
    """The detailed trace of every execution of the filter function.

    Contains the dynamic instruction records, the page-granularity memory dump
    of candidate-accessed memory, the register file at the first entry, and
    the indices delimiting each invocation of the filter function.
    """

    records: list[TraceRecord] = field(default_factory=list)
    memory_dump: dict[int, bytes] = field(default_factory=dict)
    entry_registers: dict[str, int] = field(default_factory=dict)
    invocation_bounds: list[tuple[int, int]] = field(default_factory=list)
    entry_address: Optional[int] = None

    def __len__(self) -> int:
        return len(self.records)

    def dynamic_instruction_count(self) -> int:
        return len(self.records)

    def dump_size_bytes(self) -> int:
        return sum(len(page) for page in self.memory_dump.values())

    def dump_read(self, address: int, width: int) -> int:
        """Read an unsigned integer out of the memory dump."""
        from ..x86.memory import PAGE_SIZE

        raw = bytearray()
        for i in range(width):
            page_base = (address + i) & ~(PAGE_SIZE - 1)
            page = self.memory_dump.get(page_base)
            if page is None:
                raise KeyError(f"address {address + i:#x} not in memory dump")
            raw.append(page[(address + i) - page_base])
        return int.from_bytes(bytes(raw), "little")
