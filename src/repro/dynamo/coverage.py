"""Basic-block code coverage collection (paper section 3.1).

Two coverage runs — one exercising the target filter, one not — are diffed to
obtain a first approximation of where the kernel lives.
"""

from __future__ import annotations

from .base import Tool


class CoverageTool(Tool):
    """Records the set of basic-block start addresses executed."""

    def __init__(self, module_filter: set[str] | None = None) -> None:
        self.blocks: set[int] = set()
        self.module_filter = module_filter

    def on_block(self, block_addr: int, prev_block, emu) -> None:
        if self.module_filter is not None:
            module = emu.program.module_of.get(block_addr)
            if module not in self.module_filter:
                return
        self.blocks.add(block_addr)


def coverage_difference(with_kernel: set[int], without_kernel: set[int]) -> set[int]:
    """Blocks that executed only in the run that exercised the kernel."""
    return set(with_kernel) - set(without_kernel)
