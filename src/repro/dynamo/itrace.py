"""Instruction trace capture and memory dumping (paper section 4.1).

During expression extraction Helium traces every dynamic instruction executed
from the filter function's entry to its exit (including callees), records the
absolute address of every memory access together with the address expression
of indirect operands, and dumps — at page granularity — all memory touched by
the candidate instructions found during localization.  Read pages are dumped
immediately; written pages are dumped at the filter function's exit so the
dump contains the final output.
"""

from __future__ import annotations

from ..x86.memory import PAGE_SIZE
from .base import Tool
from .records import InstructionTrace, TraceRecord

_PAGE_MASK = ~(PAGE_SIZE - 1)


class InstructionTraceTool(Tool):
    """Captures an :class:`InstructionTrace` for one filter function."""

    def __init__(self, entry_address: int,
                 candidate_instructions: set[int] | None = None) -> None:
        self.entry_address = entry_address
        self.candidate_instructions = candidate_instructions
        self.trace = InstructionTrace(entry_address=entry_address)
        self._depth = 0
        self._active = False
        self._invocation_start = 0
        self._pending_write_pages: set[int] = set()

    # -- activation -----------------------------------------------------

    def on_call(self, target_addr: int, call_site: int, emu) -> None:
        if self._active:
            self._depth += 1
        elif target_addr == self.entry_address:
            self._activate(emu)

    def on_block(self, block_addr: int, prev_block, emu) -> None:
        # The filter function may also be entered by a jump (tail call) or be
        # the start address of the run; activate in that case as well.
        if not self._active and block_addr == self.entry_address:
            self._activate(emu)

    def _activate(self, emu) -> None:
        self._active = True
        self._depth = 1
        self._invocation_start = len(self.trace.records)
        if not self.trace.entry_registers:
            self.trace.entry_registers = emu.cpu.snapshot_regs()

    def on_ret(self, return_addr: int, emu) -> None:
        if not self._active:
            return
        self._depth -= 1
        if self._depth <= 0:
            self._active = False
            self.trace.invocation_bounds.append(
                (self._invocation_start, len(self.trace.records)))
            self._dump_pending_writes(emu)

    # -- per-instruction recording ------------------------------------------

    def on_instruction_done(self, ins, accesses, emu) -> None:
        if not self._active:
            return
        trace = self.trace
        trace.records.append(TraceRecord(len(trace.records), ins, accesses))
        if self.candidate_instructions is not None and \
                ins.address not in self.candidate_instructions:
            return
        for access in accesses:
            page = access.address & _PAGE_MASK
            if access.is_write:
                self._pending_write_pages.add(page)
            elif page not in trace.memory_dump:
                trace.memory_dump[page] = bytes(emu.memory.read_bytes(page, PAGE_SIZE))

    def _dump_pending_writes(self, emu) -> None:
        for page in sorted(self._pending_write_pages):
            self.trace.memory_dump[page] = bytes(emu.memory.read_bytes(page, PAGE_SIZE))
        self._pending_write_pages.clear()
