"""Dynamic binary instrumentation tools (DynamoRIO stand-in).

The tools in this package attach to the x86 emulator and produce exactly the
artifacts Helium's analyses consume: basic-block coverage sets, block
profiles with predecessors and call targets, memory traces, and detailed
instruction traces with page-granularity memory dumps.
"""

from .base import Tool
from .cfg import DynamicCFG
from .coverage import CoverageTool, coverage_difference
from .itrace import InstructionTraceTool
from .profiler import MemoryTraceTool, ProfileTool
from .records import BlockProfile, InstructionTrace, MemoryTraceRecord, TraceRecord

__all__ = [
    "Tool", "DynamicCFG", "CoverageTool", "coverage_difference",
    "InstructionTraceTool", "MemoryTraceTool", "ProfileTool",
    "BlockProfile", "InstructionTrace", "MemoryTraceRecord", "TraceRecord",
]
