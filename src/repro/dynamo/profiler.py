"""Detailed basic-block profiling restricted to the coverage difference.

This is the third program run in the paper's workflow (section 3.1): for the
blocks that survived coverage differencing, collect execution counts,
predecessor blocks and call targets (used to build a dynamic CFG), plus a
memory trace of every access those blocks perform (used for buffer structure
reconstruction and candidate-instruction detection).
"""

from __future__ import annotations

from .base import Tool
from .records import BlockProfile, MemoryTraceRecord


class ProfileTool(Tool):
    """Collects :class:`BlockProfile` data for a set of instrumented blocks."""

    def __init__(self, instrumented_blocks: set[int] | None = None) -> None:
        self.instrumented_blocks = instrumented_blocks
        self.profile = BlockProfile()
        self._call_stack: list[int] = []
        self._active = False

    def _instruments(self, block_addr: int) -> bool:
        return self.instrumented_blocks is None or block_addr in self.instrumented_blocks

    def on_block(self, block_addr: int, prev_block, emu) -> None:
        if not self._call_stack:
            # Treat the run's start address as the outermost "function" so
            # every profiled block has a containing function.
            self._call_stack.append(block_addr)
        self._active = self._instruments(block_addr)
        if not self._active:
            return
        profile = self.profile
        profile.counts[block_addr] = profile.counts.get(block_addr, 0) + 1
        if prev_block is not None:
            profile.predecessors.setdefault(block_addr, set()).add(prev_block)
        if self._call_stack:
            profile.block_function.setdefault(block_addr, self._call_stack[-1])

    def on_call(self, target_addr: int, call_site: int, emu) -> None:
        if target_addr is None:
            return
        if self._instruments(target_addr) or self._active:
            self.profile.call_targets[target_addr] = \
                self.profile.call_targets.get(target_addr, 0) + 1
        self._call_stack.append(target_addr)

    def on_ret(self, return_addr: int, emu) -> None:
        if self._call_stack:
            self._call_stack.pop()


class MemoryTraceTool(Tool):
    """Collects the coarse memory trace for instructions in instrumented blocks."""

    def __init__(self, instrumented_blocks: set[int] | None = None) -> None:
        self.instrumented_blocks = instrumented_blocks
        self.records: list[MemoryTraceRecord] = []
        self._active = instrumented_blocks is None

    def on_block(self, block_addr: int, prev_block, emu) -> None:
        if self.instrumented_blocks is not None:
            self._active = block_addr in self.instrumented_blocks

    def on_instruction_done(self, ins, accesses, emu) -> None:
        if not self._active or not accesses:
            return
        records = self.records
        address = ins.address
        for access in accesses:
            records.append(MemoryTraceRecord(address, access.address,
                                             access.width, access.is_write))
