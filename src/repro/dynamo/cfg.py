"""Dynamic control-flow graph built from the screening profile.

The CFG supplies the block-to-function mapping used by filter function
selection (paper section 3.3): Helium picks, as the kernel, the function
containing the most candidate instructions.
"""

from __future__ import annotations

from bisect import bisect_right

from .records import BlockProfile


class DynamicCFG:
    """Blocks, edges and a dynamic function assignment."""

    def __init__(self, profile: BlockProfile) -> None:
        self.profile = profile
        self._block_starts = sorted(profile.counts)

    # -- blocks ------------------------------------------------------------

    @property
    def blocks(self) -> list[int]:
        return list(self._block_starts)

    def execution_count(self, block: int) -> int:
        return self.profile.counts.get(block, 0)

    def predecessors(self, block: int) -> set[int]:
        return set(self.profile.predecessors.get(block, set()))

    def block_of_instruction(self, instruction_address: int) -> int | None:
        """The profiled block that contains an instruction address.

        Blocks are contiguous instruction ranges, so the containing block is
        the closest block start at or below the instruction address.
        """
        index = bisect_right(self._block_starts, instruction_address)
        if index == 0:
            return None
        return self._block_starts[index - 1]

    # -- functions ------------------------------------------------------------

    def functions(self) -> set[int]:
        """Entry addresses of dynamically observed functions (call targets)."""
        entries = set(self.profile.call_targets)
        entries.update(self.profile.block_function.values())
        return entries

    def function_of_block(self, block: int) -> int | None:
        return self.profile.block_function.get(block)

    def function_of_instruction(self, instruction_address: int) -> int | None:
        block = self.block_of_instruction(instruction_address)
        if block is None:
            return None
        return self.function_of_block(block)

    def blocks_in_function(self, entry: int) -> set[int]:
        return {block for block, fn in self.profile.block_function.items() if fn == entry}

    def most_executed_block(self) -> int | None:
        if not self.profile.counts:
            return None
        return max(self.profile.counts, key=self.profile.counts.get)
