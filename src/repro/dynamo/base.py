"""Base class for instrumentation tools (DynamoRIO "clients")."""

from __future__ import annotations


class Tool:
    """An instrumentation client attached to an :class:`~repro.x86.Emulator`.

    Subclasses override only the callbacks they need; the emulator inspects
    which methods exist and skips the others, keeping the per-instruction
    overhead proportional to what the tool actually observes.

    Available callbacks::

        attached(emu)                        # tool attached to an emulator
        on_block(block_addr, prev_block, emu)
        on_call(target_addr, call_site, emu)
        on_ret(return_addr, emu)
        on_instruction(ins, emu)             # before execution
        on_instruction_done(ins, accesses, emu)  # after execution
    """

    def attached(self, emu) -> None:
        self.emulator = emu
