"""repro — a reproduction of Helium (PLDI 2015).

Helium lifts high-performance stencil kernels from stripped x86 binaries to
Halide DSL code.  This package contains the full pipeline plus the substrates
it needs: an x86 emulator with instrumentation hooks, simulated legacy
applications whose filters are optimized assembly, the Helium code
localization and expression extraction analyses, a mini-Halide DSL with a
NumPy backend, and the rejuvenation / benchmarking harness.
"""

__version__ = "1.0.0"
