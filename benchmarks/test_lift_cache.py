"""Cold-vs-warm lift through the artifact store (the staged pipeline's payoff).

A cold lift pays the paper's instrumented workflow (two coverage runs, the
profile+memtrace screen, the detailed trace) plus all analyses; a warm lift
deserializes the eight stage artifacts instead.  The acceptance bar for the
store is structural *and* quantitative: zero instrumented runs on the warm
path, every artifact a store hit, and a large wall-clock speedup.  Both
sides are recorded in ``BENCH_results.json`` under ``lift_cache/*``.

The speedup is asserted on best-of-N over repeated cold *and* warm lifts: a
single cold sample on a shared single-core host swings by 2x (0.6s-1.3s
observed for the same work), which made a ratio of two one-shot timings
flip around any fixed bar.  Quiet machines measure 9-15x and the worst
loaded-host sample observed is 7x, so the 6x bar stays clear of timing
noise — while *any* recomputed stage, fast or slow, is caught exactly by
the structural asserts (zero instrumented runs, every artifact a hit).
"""

from __future__ import annotations

import statistics
import time

from repro.apps.base import app_run_count
from repro.apps.registry import get_scenario
from repro.core.session import LiftSession
from repro.store import ArtifactStore

from conftest import print_table, record_bench

SCENARIO = ("photoshop", "blur")

#: Repeated lifts per side; the asserted ratio uses each side's best-of-N.
COLD_RUNS = 3
WARM_RUNS = 5

#: Best-of-N speedup bar: quiet hosts measure 9-15x and the worst loaded
#: sample seen is 7x.  (The old 10x bar on one-shot timings sat inside the
#: host-noise band and flaked in roughly every other full-suite run.)
MIN_SPEEDUP = 6.0


def timed_lift(store: ArtifactStore) -> tuple[float, int, "LiftSession"]:
    """One full staged lift; returns (seconds, instrumented_runs, session)."""
    app_name, filter_name = SCENARIO
    scenario = get_scenario(app_name, filter_name)
    session = LiftSession(scenario.make_app(), filter_name,
                          seed=scenario.seed, store=store)
    runs_before = app_run_count()
    start = time.perf_counter()
    session.run()
    return time.perf_counter() - start, app_run_count() - runs_before, session


def test_lift_cache_cold_vs_warm(tmp_path):
    # Each cold lift needs an empty store; the last one is kept for the
    # warm side, so every warm lift replays the same artifact set.
    cold_samples = []
    for i in range(COLD_RUNS):
        store = ArtifactStore(tmp_path / f"store{i}")
        cold_seconds, cold_runs, cold_session = timed_lift(store)
        assert cold_runs == 4, \
            "a cold lift performs the full instrumented workflow"
        cold_samples.append(cold_seconds)

    warm_samples = []
    for _ in range(WARM_RUNS):
        warm_seconds, warm_runs, warm_session = timed_lift(store)
        assert warm_runs == 0, "a warm lift must not run the application"
        assert all(r.source == "hit" for r in warm_session.explain())
        warm_samples.append(warm_seconds)

    cold_best = min(cold_samples)
    warm_best = min(warm_samples)
    speedup = cold_best / warm_best
    print_table(
        f"Artifact-store lift cache ({'/'.join(SCENARIO)}, best of "
        f"{COLD_RUNS} cold / {WARM_RUNS} warm lifts)",
        ["path", "best s", "median s", "instrumented runs", "speedup"],
        [["cold", f"{cold_best:.4f}",
          f"{statistics.median(cold_samples):.4f}", 4, "1.0x"],
         ["warm", f"{warm_best:.4f}",
          f"{statistics.median(warm_samples):.4f}", 0, f"{speedup:.1f}x"]])
    record_bench("lift_cache/cold", cold_best, engine="staged",
                 median_seconds=round(statistics.median(cold_samples), 6),
                 instrumented_runs=4)
    record_bench("lift_cache/warm", warm_best, engine="staged",
                 median_seconds=round(statistics.median(warm_samples), 6),
                 instrumented_runs=0, speedup_vs_cold=round(speedup, 2))

    assert speedup >= MIN_SPEEDUP, (
        f"warm lift only {speedup:.1f}x faster than cold "
        f"({warm_best:.4f}s vs {cold_best:.4f}s, best of "
        f"{WARM_RUNS}/{COLD_RUNS})")


def test_warm_lift_is_semantically_identical(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    app_name, filter_name = SCENARIO
    scenario = get_scenario(app_name, filter_name)
    cold = LiftSession(scenario.make_app(), filter_name, store=store).run()
    warm = LiftSession(scenario.make_app(), filter_name, store=store).run()
    assert warm.halide_sources == cold.halide_sources
    assert all(warm.validate().values())
