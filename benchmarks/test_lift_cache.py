"""Cold-vs-warm lift through the artifact store (the staged pipeline's payoff).

A cold lift pays the paper's instrumented workflow (two coverage runs, the
profile+memtrace screen, the detailed trace) plus all analyses; a warm lift
deserializes the eight stage artifacts instead.  The acceptance bar for the
store is structural *and* quantitative: zero instrumented runs on the warm
path, and at least a 10x wall-clock speedup.  Both sides are recorded in
``BENCH_results.json`` under ``lift_cache/*``.
"""

from __future__ import annotations

import time

from repro.apps.base import app_run_count
from repro.apps.registry import get_scenario
from repro.core.session import LiftSession
from repro.store import ArtifactStore

from conftest import print_table, record_bench

SCENARIO = ("photoshop", "blur")


def timed_lift(store: ArtifactStore) -> tuple[float, int, "LiftSession"]:
    """One full staged lift; returns (seconds, instrumented_runs, session)."""
    app_name, filter_name = SCENARIO
    scenario = get_scenario(app_name, filter_name)
    session = LiftSession(scenario.make_app(), filter_name,
                          seed=scenario.seed, store=store)
    runs_before = app_run_count()
    start = time.perf_counter()
    session.run()
    return time.perf_counter() - start, app_run_count() - runs_before, session


def test_lift_cache_cold_vs_warm(tmp_path):
    store = ArtifactStore(tmp_path / "store")

    cold_seconds, cold_runs, cold_session = timed_lift(store)
    assert cold_runs == 4, "a cold lift performs the full instrumented workflow"

    # Best-of-3 warm lifts: each is a fresh session against the same store.
    warm_samples = []
    for _ in range(3):
        warm_seconds, warm_runs, warm_session = timed_lift(store)
        assert warm_runs == 0, "a warm lift must not run the application"
        assert all(r.source == "hit" for r in warm_session.explain())
        warm_samples.append(warm_seconds)
    warm_seconds = min(warm_samples)

    speedup = cold_seconds / warm_seconds
    print_table(
        f"Artifact-store lift cache ({'/'.join(SCENARIO)})",
        ["path", "seconds", "instrumented runs", "speedup"],
        [["cold", f"{cold_seconds:.4f}", cold_runs, "1.0x"],
         ["warm", f"{warm_seconds:.4f}", 0, f"{speedup:.1f}x"]])
    record_bench("lift_cache/cold", cold_seconds, engine="staged",
                 instrumented_runs=cold_runs)
    record_bench("lift_cache/warm", warm_seconds, engine="staged",
                 instrumented_runs=0, speedup_vs_cold=round(speedup, 2))

    assert speedup >= 10.0, (
        f"warm lift only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.4f}s vs {cold_seconds:.4f}s)")


def test_warm_lift_is_semantically_identical(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    app_name, filter_name = SCENARIO
    scenario = get_scenario(app_name, filter_name)
    cold = LiftSession(scenario.make_app(), filter_name, store=store).run()
    warm = LiftSession(scenario.make_app(), filter_name, store=store).run()
    assert warm.halide_sources == cold.halide_sources
    assert all(warm.validate().values())
