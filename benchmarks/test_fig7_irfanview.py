"""Figure 7 (bottom): IrfanView filters vs. lifted Halide, standalone.

The paper reports an average 4.97x speedup, dominated by the blur and sharpen
filters whose original implementations run in x87 floating point with a
per-invocation preparation cost.
"""

from __future__ import annotations

import pytest

from repro.rejuvenation import (
    apply_lifted_irfanview,
    legacy_irfanview_filter,
    lift_irfanview_filter,
)

from conftest import print_table, record_bench, time_callable

PAPER_SPEEDUPS = {"invert": 2.03, "solarize": 2.16, "blur": 8.70, "sharpen": 6.98}
FILTERS = list(PAPER_SPEEDUPS)


@pytest.fixture(scope="module")
def fig7_iv_rows(bench_interleaved):
    rows = []
    for name in FILTERS:
        lifted = lift_irfanview_filter(name)
        legacy_time = time_callable(lambda: legacy_irfanview_filter(name, bench_interleaved))
        lifted_time = time_callable(lambda: apply_lifted_irfanview(lifted, name,
                                                                   bench_interleaved))
        speedup = legacy_time / lifted_time if lifted_time else float("inf")
        record_bench(f"fig7_irfanview/{name}/legacy", legacy_time, engine="legacy")
        record_bench(f"fig7_irfanview/{name}/lifted", lifted_time, engine="default")
        rows.append([name, f"{legacy_time * 1000:.1f}", f"{lifted_time * 1000:.1f}",
                     f"{speedup:.2f}x", f"{PAPER_SPEEDUPS[name]:.2f}x"])
    return rows


def test_fig7_irfanview_table(fig7_iv_rows):
    print_table("Figure 7 (IrfanView): legacy vs lifted, standalone",
                ["filter", "legacy ms", "lifted ms", "speedup", "paper speedup"],
                fig7_iv_rows)
    speedups = {row[0]: float(row[3].rstrip("x")) for row in fig7_iv_rows}
    # Every lifted filter beats the legacy implementation, and the
    # floating-point stencils (the paper's 8.7x/7.0x rows) win clearly.
    # Unlike the paper, the pointwise integer filters now gain *more* than
    # the stencils: the compiled realization engine narrows their arithmetic
    # to small integer dtypes and elides cast wraps, while the float stencils
    # stay bound by double-precision multiplies in both the legacy and
    # lifted paths (see EXPERIMENTS.md).
    assert all(value > 1.0 for value in speedups.values()), speedups
    assert speedups["blur"] > 2.0 and speedups["sharpen"] > 2.0, speedups


def test_fig7_irfanview_blur_benchmark(benchmark, bench_interleaved):
    lifted = lift_irfanview_filter("blur")
    benchmark(lambda: apply_lifted_irfanview(lifted, "blur", bench_interleaved))
