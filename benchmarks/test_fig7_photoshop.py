"""Figure 7 (top): Photoshop filters vs. lifted Halide, standalone.

For every fully-lifted filter the paper compares Photoshop's own execution
against the lifted, autotuned Halide kernel running standalone.  Here the
Photoshop side is the legacy runtime model (per-channel, tile-driven,
unvectorized structure) and the lifted side realizes the actually-lifted
symbolic kernels through the vectorized NumPy backend.  The expected *shape*:
most filters speed up (the paper averages 1.75x), and box blur — whose
sliding-window trick the lift cancels — slows down (0.80x in the paper).
"""

from __future__ import annotations

import pytest

from repro.rejuvenation import (
    apply_lifted_photoshop,
    legacy_photoshop_filter,
    lift_photoshop_filter,
)

from conftest import print_table, record_bench, time_callable

PAPER_SPEEDUPS = {
    "invert": 1.74, "blur": 2.62, "blur_more": 1.12, "sharpen": 2.46,
    "sharpen_more": 2.08, "threshold": 1.42, "box_blur": 0.80,
}
FILTERS = list(PAPER_SPEEDUPS)
PARAMS = {"threshold": 128, "brightness": 40}


@pytest.fixture(scope="module")
def fig7_rows(bench_planes):
    rows = []
    for name in FILTERS:
        lifted = lift_photoshop_filter(name)
        legacy_time = time_callable(lambda: legacy_photoshop_filter(name, bench_planes, PARAMS))
        lifted_time = time_callable(lambda: apply_lifted_photoshop(lifted, name,
                                                                   bench_planes, PARAMS))
        speedup = legacy_time / lifted_time if lifted_time else float("inf")
        record_bench(f"fig7_photoshop/{name}/legacy", legacy_time, engine="legacy")
        record_bench(f"fig7_photoshop/{name}/lifted", lifted_time, engine="default")
        rows.append([name, f"{legacy_time * 1000:.1f}", f"{lifted_time * 1000:.1f}",
                     f"{speedup:.2f}x", f"{PAPER_SPEEDUPS[name]:.2f}x"])
    return rows


def test_fig7_photoshop_table(fig7_rows):
    print_table("Figure 7 (Photoshop): legacy vs lifted, standalone",
                ["filter", "legacy ms", "lifted ms", "speedup", "paper speedup"],
                fig7_rows)
    speedups = {row[0]: float(row[3].rstrip("x")) for row in fig7_rows}
    wins = [n for n in FILTERS if n != "box_blur" and speedups[n] > 1.0]
    # Shape of the figure: the lifted kernels win on most filters...
    assert len(wins) >= 4, speedups
    # ... and box blur does not enjoy a large win, because canonicalization
    # undid the sliding-window optimization (paper: 0.80x).
    assert speedups["box_blur"] < max(speedups[n] for n in wins), speedups


def test_fig7_photoshop_blur_benchmark(benchmark, bench_planes):
    lifted = lift_photoshop_filter("blur")
    benchmark(lambda: apply_lifted_photoshop(lifted, "blur", bench_planes, PARAMS))
