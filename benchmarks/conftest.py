"""Shared workloads and helpers for the figure-reproduction benchmarks.

The paper evaluates on a 11959x8135 truecolor image; the benchmarks here use a
smaller image so the whole suite runs in minutes, but every comparison keeps
the paper's structure (same filters, same baselines, same pipelines).  Each
benchmark prints a table with the paper's numbers alongside the measured ones;
EXPERIMENTS.md records a captured run.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.apps.images import make_test_planes

#: Benchmark image size (width, height).
BENCH_WIDTH = 480
BENCH_HEIGHT = 320


@pytest.fixture(scope="session")
def bench_planes() -> dict[str, np.ndarray]:
    return make_test_planes(BENCH_WIDTH, BENCH_HEIGHT, seed=42)


@pytest.fixture(scope="session")
def bench_interleaved(bench_planes) -> np.ndarray:
    return np.stack([bench_planes["r"], bench_planes["g"], bench_planes["b"]], axis=-1)


def time_callable(fn, repeats: int = 3) -> float:
    """Best wall-clock seconds of ``fn()`` over a few repeats.

    The first repeat doubles as warm-up (it may include one-time costs such as
    the cached lifting runs), so the minimum is the stable measurement.
    """
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    widths = [max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
              for i in range(len(headers))]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
