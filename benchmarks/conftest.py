"""Shared workloads and helpers for the figure-reproduction benchmarks.

The paper evaluates on a 11959x8135 truecolor image; the benchmarks here use a
smaller image so the whole suite runs in minutes, but every comparison keeps
the paper's structure (same filters, same baselines, same pipelines).  Each
benchmark prints a table with the paper's numbers alongside the measured ones;
EXPERIMENTS.md records a captured run.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.apps.images import make_test_planes

#: Benchmark image size (width, height).
BENCH_WIDTH = 480
BENCH_HEIGHT = 320

#: Larger image for the multicore/batched benchmarks: tile-parallel execution
#: needs enough work per realization for the fan-out to pay off.
LARGE_WIDTH = 960
LARGE_HEIGHT = 640

#: Collected measurements, written to BENCH_results.json at session end so
#: the perf trajectory is machine-readable across PRs.
BENCH_RESULTS: dict[str, dict] = {}

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"


def record_bench(name: str, seconds: float, engine: str = "",
                 image_size: tuple[int, int] | None = None, **extra) -> None:
    """Record one benchmark's best wall-clock time for BENCH_results.json."""
    entry = {
        "best_seconds": round(seconds, 6),
        "engine": engine,
        "image_size": list(image_size if image_size is not None
                           else (BENCH_WIDTH, BENCH_HEIGHT)),
    }
    entry.update(extra)
    BENCH_RESULTS[name] = entry


def pytest_sessionfinish(session, exitstatus):
    if not BENCH_RESULTS:
        return
    # Merge into any existing results so a partial benchmark run (a smoke
    # subset, -k selection) refreshes only what it measured instead of
    # clobbering the rest of the tracked trajectory.
    results: dict[str, dict] = {}
    if RESULTS_PATH.exists():
        try:
            results = json.loads(RESULTS_PATH.read_text()).get("results", {})
        except (json.JSONDecodeError, OSError):
            results = {}
    results.update(BENCH_RESULTS)
    payload = {
        "image_size": [BENCH_WIDTH, BENCH_HEIGHT],
        "python": platform.python_version(),
        "machine": platform.machine(),
        # Keys actually measured by THIS session (the merge above keeps
        # older entries verbatim); the CI regression gate only compares
        # these, so stale carried-over numbers can neither fail nor skew it.
        "last_run_keys": sorted(BENCH_RESULTS),
        "results": dict(sorted(results.items())),
    }
    RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def bench_planes() -> dict[str, np.ndarray]:
    return make_test_planes(BENCH_WIDTH, BENCH_HEIGHT, seed=42)


@pytest.fixture(scope="session")
def bench_planes_large() -> dict[str, np.ndarray]:
    return make_test_planes(LARGE_WIDTH, LARGE_HEIGHT, seed=7)


@pytest.fixture(scope="session")
def bench_interleaved(bench_planes) -> np.ndarray:
    return np.stack([bench_planes["r"], bench_planes["g"], bench_planes["b"]], axis=-1)


def time_callable(fn, repeats: int = 3) -> float:
    """Best wall-clock seconds of ``fn()`` over a few repeats.

    The first repeat doubles as warm-up (it may include one-time costs such as
    the cached lifting runs), so the minimum is the stable measurement.
    """
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    widths = [max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
              for i in range(len(headers))]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
