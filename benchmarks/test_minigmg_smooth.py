"""Section 6.3: the miniGMG smooth stencil (28.5 s -> 6.7 s, 4.25x in the paper).

Compares the legacy plane-by-plane smoother against the lifted smooth stencil
realized through the vectorized backend, over several Jacobi iterations on a
ghosted 3-D grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.minigmg import SMOOTH_SPEC
from repro.rejuvenation import (
    apply_lifted_minigmg,
    legacy_minigmg_smooth,
    lift_minigmg_smooth,
)

from conftest import print_table, time_callable

GRID = 48
ITERATIONS = 4


@pytest.fixture(scope="module")
def bench_grid():
    rng = np.random.default_rng(3)
    return rng.uniform(-1.0, 1.0, size=(GRID + 2, GRID + 2, GRID + 2))


def test_minigmg_smooth_speedup(bench_grid):
    lifted = lift_minigmg_smooth()
    a, b = SMOOTH_SPEC.center_weight, SMOOTH_SPEC.neighbor_weight
    legacy_time = time_callable(lambda: legacy_minigmg_smooth(bench_grid, a, b, ITERATIONS), 2)
    lifted_time = time_callable(lambda: apply_lifted_minigmg(lifted, bench_grid, ITERATIONS), 2)
    speedup = legacy_time / lifted_time
    print_table("miniGMG smooth stencil",
                ["configuration", "seconds", "speedup"],
                [["miniGMG (plane-by-plane)", f"{legacy_time:.3f}", "1.00x"],
                 ["lifted Halide smooth", f"{lifted_time:.3f}", f"{speedup:.2f}x"],
                 ["paper", "28.5 -> 6.7", "4.25x"]])
    assert speedup > 1.0
    # The two implementations agree numerically.
    legacy_out = legacy_minigmg_smooth(bench_grid, a, b, 1)
    lifted_out = apply_lifted_minigmg(lifted, bench_grid, 1)
    np.testing.assert_allclose(lifted_out, legacy_out, rtol=1e-12, atol=1e-12)


def test_minigmg_lifted_benchmark(benchmark, bench_grid):
    lifted = lift_minigmg_smooth()
    benchmark(lambda: apply_lifted_minigmg(lifted, bench_grid, 1))
