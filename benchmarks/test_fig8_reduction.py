"""Reduction scheduling: serial vs two-phase parallel partial accumulators.

The architectural claim behind lowering reduction (RDom) stages: an
associative accumulation no longer serializes on its accumulator — the RDom
domain splits into row strips, each strip fills a *private* partial
accumulator on the shared worker pool (``np.add.at`` releases the GIL for
the indexed work), and a deterministic serial merge folds the partials into
the output.  Both schedules execute the same lowered pipeline through the
same backend and are bit-identical to the interpreter oracle; only the
update phase differs.

Records ``fig8_reduction/serial``, ``fig8_reduction/parallel`` and
``fig8_reduction/serving`` in BENCH_results.json.  The >=1.5x
parallel-vs-serial assertion is gated on an effective pool of >= 4 workers
(smaller hosts still record the trajectory), matching the other fig8
parallel benchmarks.
"""

from __future__ import annotations

import os

import numpy as np

from repro.halide import (
    Func,
    FuncPipeline,
    PipelineServer,
    RDom,
    Var,
    clear_kernel_cache,
    configure_pool,
    kernel_cache_stats,
    pool_size,
)
from repro.halide.parallel import parallel_enabled
from repro.ir import (
    BinOp, BufferAccess, Cast, Const, Op, ReduceLoop, UINT8, UINT32,
    Var as IRVar,
)

from conftest import LARGE_HEIGHT, LARGE_WIDTH, print_table, record_bench, \
    time_callable

#: RDom strip height for the parallel schedule: 640 rows -> 8 partials,
#: enough fan-out for the pool while the partial set stays small.
STRIP_ROWS = 80


def _histogram_pipeline(parallel: bool) -> FuncPipeline:
    """A rank-preserving histogram at frame scale: bin pixel values modulo
    the frame dimensions (what lifted in-pipeline reductions look like)."""
    x, y = Var("x_0"), Var("x_1")
    source = Func("src", [x, y], dtype=UINT8).define(
        Cast(UINT8, BinOp(Op.XOR, Const(255, UINT32),
                          Cast(UINT32, BufferAccess("input_1", [x, y], UINT8)),
                          UINT32)))
    hist = Func("hist", [x, y], dtype=UINT32).define(Const(0, UINT32))
    rdom = RDom("r_0", source="src_buf", dimensions=2)
    value = BufferAccess("src_buf", [IRVar("r_0"), IRVar("r_1")], UINT8)
    indices = [BinOp(Op.MOD, value, Const(LARGE_WIDTH, UINT32), UINT32),
               BinOp(Op.MOD, value, Const(LARGE_HEIGHT, UINT32), UINT32)]
    hist.update(rdom, indices,
                BinOp(Op.ADD, BufferAccess("hist", indices, UINT32),
                      Const(1, UINT32)))
    pipeline = FuncPipeline()
    pipeline.add(source, input_name="input_1", name="src")
    pipeline.add(hist, input_name="src_buf", name="hist")
    source.compute_root()
    hist.compute_root()
    hist.schedule.tile_y = STRIP_ROWS
    if parallel:
        hist.parallel()
    return pipeline


def test_fig8_reduction_parallel_vs_serial(bench_planes_large):
    frame = bench_planes_large["r"]
    configure_pool()           # fresh pool sized to this machine

    serial = _histogram_pipeline(parallel=False)
    parallel = _histogram_pipeline(parallel=True)

    # Bit-identity: both schedules, both backends, against the legacy
    # stage-by-stage interpreter oracle.
    oracle_pipeline = _histogram_pipeline(parallel=False)
    for stage in oracle_pipeline.stages:
        stage.func.schedule.compute = "default"
    oracle = oracle_pipeline.realize(frame, engine="interp")
    for pipeline in (serial, parallel):
        for engine in ("interp", "compiled"):
            np.testing.assert_array_equal(
                pipeline.realize(frame, engine=engine), oracle)

    # The parallel lowering really is two-phase (not a silently-serial nest).
    lowered = parallel.lower(frame.shape)
    (sweep,) = [n for n in lowered.stmt.walk() if isinstance(n, ReduceLoop)]
    assert sweep.associative and sweep.target_index is not None
    assert "two-phase" in lowered.decisions[1].describe()

    serial_time = time_callable(
        lambda: serial.realize(frame, engine="compiled"), 3)
    parallel_time = time_callable(
        lambda: parallel.realize(frame, engine="compiled"), 3)
    speedup = serial_time / parallel_time
    cores = os.cpu_count() or 1
    strips = -(-LARGE_HEIGHT // STRIP_ROWS)

    print_table(f"Figure 8 (reduction): histogram pipeline at "
                f"{LARGE_WIDTH}x{LARGE_HEIGHT}, {pool_size()} workers",
                ["schedule", "ms", "speedup"],
                [["whole-domain serial sweep", f"{serial_time * 1000:.1f}",
                  "1.00x"],
                 [f"two-phase ({strips} strips x {STRIP_ROWS} rows)",
                  f"{parallel_time * 1000:.1f}", f"{speedup:.2f}x"]])
    record_bench("fig8_reduction/serial", serial_time, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT))
    record_bench("fig8_reduction/parallel", parallel_time, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 speedup=round(speedup, 2), strips=strips,
                 strip_rows=STRIP_ROWS, workers=pool_size(), cores=cores)
    # Gate on the *effective* pool, not raw core count: REPRO_NUM_THREADS /
    # REPRO_PARALLEL legitimately force serial execution on multicore hosts.
    if pool_size() >= 4 and parallel_enabled():
        assert speedup >= 1.5, \
            f"parallel reduction only {speedup:.2f}x faster"


def test_fig8_reduction_serving_zero_per_request_compiles(bench_planes_large):
    """PipelineServer serves the reduction pipeline compile-free: every
    store kernel and the update sweep compile at construction."""
    frame = bench_planes_large["r"]
    frames = [frame, np.roll(frame, 7, axis=1), np.roll(frame, 3, axis=0),
              frame[::-1].copy()]
    pipeline = _histogram_pipeline(parallel=True)
    expected = [pipeline.realize(f) for f in frames]

    clear_kernel_cache()
    with PipelineServer(pipeline, frame_shape=frame.shape) as server:
        warm_misses = kernel_cache_stats["misses"]
        assert warm_misses >= 2            # store kernels + update sweep
        # Best-of-N batches, mirroring ``time_callable``: the first batch
        # doubles as warm-up, the minimum is the stable per-frame figure.
        # A single 4-frame batch swings 28-55 ms/frame on a busy host and
        # has twice masqueraded as a serving regression in review.
        batches = [server.realize_batch(frames) for _ in range(5)]
        stats = server.stats()
    assert kernel_cache_stats["misses"] == warm_misses, \
        "a request paid codegen"
    assert stats["completed"] == len(batches) * len(frames)
    for batch in batches:
        for output, reference in zip(batch.outputs, expected):
            np.testing.assert_array_equal(output, reference)

    best = min(batches, key=lambda batch: batch.wall_seconds)
    record_bench("fig8_reduction/serving", best.wall_seconds / len(frames),
                 engine="compiled", image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 frames=len(frames), batches=len(batches),
                 frames_per_second=round(best.frames_per_second, 2))
