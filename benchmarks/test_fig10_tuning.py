"""Cost-model autotuning: tuned vs default, and warm starts that time nothing.

The paper's schedules are *searched*, not guessed (section 6.2, OpenTuner);
this benchmark proves the repo's replacement earns its keep on the two-stage
blur pipeline at full frame size:

* ``fig10_tuning/default`` — the default (unscheduled) pipeline;
* ``fig10_tuning/tuned`` — after one cost-model-guided tuning session that
  wall-clock-times only the baseline plus at most top-k (k <= 5) sampled
  candidates;
* ``fig10_tuning/warm_start`` — a fresh pipeline warm-started from the
  persisted tuning record with **zero** timed candidate evaluations.

The tuned-vs-default comparison uses the same paired-ratio discipline as
fig9_resilience: interleaved rounds, order flipped per round, median of the
per-round ratios — so host-wide speed drift cancels instead of polluting a
pooled mean.  A second test checks ranking *quality*: the model's top-5
must contain the empirically best measured schedule (or one statistically
indistinguishable from it under the same paired-ratio discipline).
"""

from __future__ import annotations

import statistics
from dataclasses import replace

import numpy as np

from repro.halide import FuncPipeline, PipelineServer, Schedule
from repro.halide.autotune import (
    autotune_pipeline,
    reset_tuner_stats,
    tuner_stats,
)
from repro.rejuvenation import lift_photoshop_filter
from repro.store import ArtifactStore

from conftest import LARGE_HEIGHT, LARGE_WIDTH, print_table, record_bench, \
    time_callable

#: Sampled candidates per tuning session and the live-timing cap.  The
#: acceptance criterion is k <= 5 timed *sampled* candidates (the baseline
#: is always timed on top).
ITERATIONS = 12
TOP_K = 5

#: Paired interleaved rounds for the tuned-vs-default ratio (fig9 style).
ROUNDS = 8
#: Absolute slack below which a "regression" is scheduler jitter, not signal.
EPSILON_SECONDS = 0.002
#: A candidate within 10% of the global best is statistically the same
#: schedule on a noisy shared host.
TIE_RATIO = 1.10


def _two_stage_blur() -> FuncPipeline:
    """blur(blur(frame)) with default schedules, fresh Func copies."""
    lifted = lift_photoshop_filter("blur")
    kernel = sorted(lifted.kernels, key=lambda k: k.output)[0]
    func = lifted.funcs[kernel.output]
    input_name = sorted(kernel.input_names)[0]
    pipeline = FuncPipeline()
    pipeline.add(replace(func, schedule=Schedule()), input_name=input_name,
                 pad=1, name="blur1")
    pipeline.add(replace(func, schedule=Schedule()), input_name=input_name,
                 pad=1, name="blur2")
    return pipeline


def _paired_ratio(numerator_fn, denominator_fn, rounds: int = ROUNDS
                  ) -> tuple[float, float, float]:
    """Median per-round numerator/denominator ratio, order flipped per round.

    Returns ``(ratio, numerator_median, denominator_median)``.
    """
    num_samples: list[float] = []
    den_samples: list[float] = []
    ratios: list[float] = []
    for round_index in range(rounds):
        if round_index % 2 == 0:
            num = time_callable(numerator_fn, 1)
            den = time_callable(denominator_fn, 1)
        else:
            den = time_callable(denominator_fn, 1)
            num = time_callable(numerator_fn, 1)
        num_samples.append(num)
        den_samples.append(den)
        ratios.append(num / den)
    return (statistics.median(ratios), statistics.median(num_samples),
            statistics.median(den_samples))


def test_fig10_tuning_tuned_vs_default_and_warm_start(bench_planes_large,
                                                      tmp_path):
    frame = bench_planes_large["r"]
    store = ArtifactStore(tmp_path / "tuning_store")

    # --- tune once, with the live-timing budget capped at top-k ------------
    tuned_pipeline = _two_stage_blur()
    reset_tuner_stats()
    result = autotune_pipeline(tuned_pipeline, frame, iterations=ITERATIONS,
                               seed=3, engine="compiled", top_k=TOP_K,
                               store=store)
    assert result.source == "search"
    # Acceptance: at most top-k sampled candidates were wall-clock-timed
    # (plus the always-timed baseline), out of the full sampled set.
    assert result.evaluations <= TOP_K + 1
    assert tuner_stats["timed_evaluations"] == result.evaluations
    assert len(result.ranked) == len(result.candidates) > result.evaluations
    assert tuner_stats["db_stores"] == 1

    default_pipeline = _two_stage_blur()
    # Outputs stay bit-identical whatever the winner was.
    np.testing.assert_array_equal(
        default_pipeline.realize(frame, engine="compiled"),
        tuned_pipeline.realize(frame, engine="compiled"))

    # --- paired-ratio comparison (fig9 discipline) -------------------------
    ratio, tuned_seconds, default_seconds = _paired_ratio(
        lambda: tuned_pipeline.realize(frame, engine="compiled"),
        lambda: default_pipeline.realize(frame, engine="compiled"))

    # --- warm start: a fresh server applies the record, times nothing ------
    warm_pipeline = _two_stage_blur()
    reset_tuner_stats()
    with PipelineServer(warm_pipeline, frame_shape=frame.shape,
                        store=store) as server:
        assert server.warm_started
        assert tuner_stats["timed_evaluations"] == 0
        assert tuner_stats["warm_start_hits"] == 1
        assert [s.func.schedule.describe() for s in warm_pipeline.stages] \
            == [s.describe() for s in result.best_schedules]
        warm_seconds = time_callable(
            lambda: server.submit(image=frame).result(), 3)
    assert tuner_stats["timed_evaluations"] == 0

    best_describe = " | ".join(s.describe() for s in result.best_schedules)
    print_table(
        f"Figure 10 (tuning): two-stage blur at {LARGE_WIDTH}x{LARGE_HEIGHT} "
        f"(median of {ROUNDS} paired rounds)",
        ["configuration", "ms", "notes"],
        [["default", f"{default_seconds * 1000:.1f}", "unscheduled"],
         ["tuned", f"{tuned_seconds * 1000:.1f}",
          f"{result.evaluations} timed of {len(result.candidates)} "
          f"candidates; {best_describe}"],
         ["warm start", f"{warm_seconds * 1000:.1f}",
          "0 timed evaluations"]])

    record_bench("fig10_tuning/default", default_seconds, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT))
    record_bench("fig10_tuning/tuned", tuned_seconds, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 evaluations=result.evaluations,
                 candidates=len(result.candidates),
                 top_k=TOP_K,
                 best_schedules=[s.describe() for s in result.best_schedules],
                 tuned_over_default=round(ratio, 3))
    record_bench("fig10_tuning/warm_start", warm_seconds, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 timed_evaluations=0)

    # Acceptance: tuned >= default.  The baseline is always timed, so the
    # winner can only beat (or equal) the default schedule; the paired
    # median ratio guards the re-measurement against host noise.
    assert ratio <= 1.0 + 0.05 \
        or tuned_seconds <= default_seconds + EPSILON_SECONDS, \
        f"tuned schedule {ratio:.2f}x slower than default"


def test_fig10_ranking_quality_top5_contains_best(bench_planes_large):
    """The model's top-5 contains the empirically best measured schedule,
    or one statistically indistinguishable from it (paired-ratio median
    within TIE_RATIO) — timing *all* candidates as ground truth."""
    frame = bench_planes_large["r"]
    pipeline = _two_stage_blur()
    result = autotune_pipeline(pipeline, frame, iterations=10, seed=4,
                               engine="compiled", top_k=None)
    # top_k=None wall-clock-times the entire deduped candidate set.
    assert result.evaluations == len(result.candidates)

    times = {describe: seconds for describe, seconds in result.history}
    best_describe = min(times, key=times.get)
    top5 = [score.describe for score in result.ranked[:5]]
    in_top5 = best_describe in top5

    rows = [[" | ".join(score.describe), f"{times[score.describe] * 1000:.1f}",
             f"{score.cost:.0f}", score.demotions]
            for score in result.ranked[:5]]
    print_table("Figure 10 (ranking quality): model top-5 vs measured",
                ["schedule", "measured ms", "model cost", "demotions"], rows)

    if not in_top5:
        # Re-measure the contested pair with the fig9 discipline before
        # declaring a ranking miss: interleaved rounds, median ratio.
        best_index = next(score.index for score in result.ranked
                          if score.describe == best_describe)
        top_index = result.ranked[0].index
        global_best = result.candidates[best_index]
        model_best = result.candidates[top_index]

        def run_with(schedules):
            for stage, schedule in zip(pipeline.stages, schedules):
                stage.func.schedule = schedule
            return pipeline.realize(frame, engine="compiled")

        ratio, model_seconds, best_seconds = _paired_ratio(
            lambda: run_with(model_best), lambda: run_with(global_best))
        assert ratio <= TIE_RATIO \
            or model_seconds <= best_seconds + EPSILON_SECONDS, \
            (f"model top-5 misses the measured best by {ratio:.2f}x: "
             f"best={best_describe}, top5={top5}")
