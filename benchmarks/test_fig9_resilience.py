"""Resilience overhead: the fault-injection harness must cost ~nothing off.

Three serving configurations over the same batch of frames through one
:class:`PipelineServer`:

* **clean** — no fault plan installed; every instrumented site is a single
  ``None`` check.  This is the production path, and the gate: it must stay
  within 3% of itself across the guarded wiring (measured against the same
  batch with deadline/retry policies engaged but no faults firing).
* **guarded** — deadlines + retry policy supplied, still no faults: the cost
  of policy bookkeeping on the happy path.
* **faulted** — a deterministic chaos schedule firing across the batch: what
  degraded service costs when the injected failures actually happen (recorded
  for the trajectory, not gated — it measures the *faults*, not the harness).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.halide import Func, PipelineServer, Schedule, Var, configure_pool
from repro.ir import BinOp, BufferAccess, Cast, Const, Op, UINT8, UINT32
from repro.reliability import BatchError, FaultPlan, inject

from conftest import (
    LARGE_HEIGHT,
    LARGE_WIDTH,
    print_table,
    record_bench,
    time_callable,
)

FRAMES = 6
#: Frames are double the large bench size: the reliability layer's cost is
#: fixed per request (~tens of µs), so the gate needs enough per-request
#: work that single-core scheduler jitter cannot masquerade as overhead.
GATE_WIDTH, GATE_HEIGHT = 2 * LARGE_WIDTH, 2 * LARGE_HEIGHT
FAULT_SPEC = ("kernel.execute:p=0.3,n=3;tile.execute:p=0.1,n=4;"
              "serve.latency:p=0.3,latency=0.002")

#: The gate: guarded (policies on, faults off) vs clean serving overhead.
MAX_OVERHEAD = 0.03
#: Millisecond-scale absolute slack: on a single-core CI runner best-of-N
#: still jitters by scheduler quanta, which 3% of a short batch is below.
EPSILON_SECONDS = 0.002


def blur_func() -> Func:
    x, y = Var("x_0"), Var("x_1")
    expr = Cast(UINT8, BinOp(Op.SHR, BinOp(
        Op.ADD,
        Cast(UINT32, BufferAccess("input_1", [x, y], UINT8)),
        Cast(UINT32, BufferAccess("input_1", [BinOp(Op.ADD, x, Const(2)),
                                              BinOp(Op.ADD, y, Const(2))],
                                  UINT8)),
        UINT32), Const(1, UINT32)))
    func = Func("blur", [x, y], dtype=UINT8).define(expr)
    func.schedule = Schedule(tile_x=128, tile_y=64, parallel=True)
    return func


@pytest.fixture(scope="module")
def resilience_frames() -> list[np.ndarray]:
    rng = np.random.default_rng(11)
    return [rng.integers(0, 256, size=(GATE_HEIGHT + 2, GATE_WIDTH + 2),
                         dtype=np.uint8) for _ in range(FRAMES)]


def _serve_batch(server, frames, **kwargs) -> None:
    requests = [{"shape": (GATE_WIDTH, GATE_HEIGHT),
                 "buffers": {"input_1": frame}} for frame in frames]
    try:
        server.realize_batch(requests, **kwargs)
    except BatchError:
        pass          # faulted mode may exhaust a request's budget: recorded


def test_fig9_resilience_overhead(resilience_frames):
    configure_pool()
    func = blur_func()
    with PipelineServer(func) as server:
        # Interleave the two gated measurements round-robin: an external
        # load spike then lands on both modes instead of inflating
        # whichever happened to be timed second, and best-of-N still
        # discards it entirely when it was one-sided.
        clean = guarded = float("inf")
        for _ in range(7):
            clean = min(clean, time_callable(
                lambda: _serve_batch(server, resilience_frames), repeats=1))
            guarded = min(guarded, time_callable(
                lambda: _serve_batch(server, resilience_frames,
                                     deadline=60.0, retries=2), repeats=1))

        def faulted_batch():
            with inject(FaultPlan.parse(FAULT_SPEC, seed=5)):
                _serve_batch(server, resilience_frames,
                             deadline=60.0, retries=2)

        faulted = time_callable(faulted_batch, repeats=3)
        stats = server.stats()

    print_table(
        "Figure 9 companion: resilience harness overhead "
        f"({FRAMES} frames, {GATE_WIDTH}x{GATE_HEIGHT})",
        ["mode", "batch ms", "vs clean"],
        [["clean (faults off)", f"{clean * 1000:.2f}", "1.00x"],
         ["guarded (deadline+retries)", f"{guarded * 1000:.2f}",
          f"{guarded / clean:.3f}x" if clean else "n/a"],
         ["faulted (chaos schedule)", f"{faulted * 1000:.2f}",
          f"{faulted / clean:.3f}x" if clean else "n/a"]])
    size = (GATE_WIDTH, GATE_HEIGHT)
    record_bench("fig9_resilience/clean", clean, engine="default",
                 image_size=size, frames=FRAMES)
    record_bench("fig9_resilience/guarded", guarded, engine="default",
                 image_size=size, frames=FRAMES,
                 overhead_vs_clean=round(guarded / clean - 1.0, 4)
                 if clean else None)
    record_bench("fig9_resilience/faulted", faulted, engine="default",
                 image_size=size, frames=FRAMES,
                 degraded=stats["degraded"], retries=stats["retries"])

    # The gate: with no faults firing, the whole reliability layer —
    # instrumented sites, deadline plumbing, retry/breaker bookkeeping —
    # must be within 3% of the unguarded serving path (plus scheduler
    # jitter slack on millisecond-scale batches).
    assert guarded <= clean * (1.0 + MAX_OVERHEAD) + EPSILON_SECONDS, (
        f"guarded serving {guarded:.4f}s exceeds clean {clean:.4f}s "
        f"by more than {MAX_OVERHEAD:.0%}")
