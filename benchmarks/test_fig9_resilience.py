"""Resilience overhead: the fault-injection harness must cost ~nothing off.

Three serving configurations over the same batch of frames through one
:class:`PipelineServer`:

* **clean** — no fault plan installed; every instrumented site is a single
  ``None`` check.  This is the production path, and the gate: it must stay
  within 3% of itself across the guarded wiring (measured against the same
  batch with deadline/retry policies engaged but no faults firing).
* **guarded** — deadlines + retry policy supplied, still no faults: the cost
  of policy bookkeeping on the happy path.
* **faulted** — a deterministic chaos schedule firing across the batch: what
  degraded service costs when the injected failures actually happen (recorded
  for the trajectory, not gated — it measures the *faults*, not the harness).
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro.halide import Func, PipelineServer, Schedule, Var, configure_pool
from repro.ir import BinOp, BufferAccess, Cast, Const, Op, UINT8, UINT32
from repro.reliability import BatchError, FaultPlan, inject

from conftest import (
    LARGE_HEIGHT,
    LARGE_WIDTH,
    print_table,
    record_bench,
    time_callable,
)

FRAMES = 6
#: Frames are double the large bench size: the reliability layer's cost is
#: fixed per request (~tens of µs), so the gate needs enough per-request
#: work that single-core scheduler jitter cannot masquerade as overhead.
GATE_WIDTH, GATE_HEIGHT = 2 * LARGE_WIDTH, 2 * LARGE_HEIGHT
FAULT_SPEC = ("kernel.execute:p=0.3,n=3;tile.execute:p=0.1,n=4;"
              "serve.latency:p=0.3,latency=0.002")

#: The gate: guarded (policies on, faults off) vs clean serving overhead.
MAX_OVERHEAD = 0.03
#: Interleaved clean/guarded measurement rounds per mode.
ROUNDS = 12
#: Millisecond-scale absolute slack: on a single-core CI runner even the
#: median jitters by scheduler quanta, which 3% of a short batch is below.
EPSILON_SECONDS = 0.002


def blur_func() -> Func:
    x, y = Var("x_0"), Var("x_1")
    expr = Cast(UINT8, BinOp(Op.SHR, BinOp(
        Op.ADD,
        Cast(UINT32, BufferAccess("input_1", [x, y], UINT8)),
        Cast(UINT32, BufferAccess("input_1", [BinOp(Op.ADD, x, Const(2)),
                                              BinOp(Op.ADD, y, Const(2))],
                                  UINT8)),
        UINT32), Const(1, UINT32)))
    func = Func("blur", [x, y], dtype=UINT8).define(expr)
    func.schedule = Schedule(tile_x=128, tile_y=64, parallel=True)
    return func


@pytest.fixture(scope="module")
def resilience_frames() -> list[np.ndarray]:
    rng = np.random.default_rng(11)
    return [rng.integers(0, 256, size=(GATE_HEIGHT + 2, GATE_WIDTH + 2),
                         dtype=np.uint8) for _ in range(FRAMES)]


def _serve_batch(server, frames, **kwargs) -> None:
    requests = [{"shape": (GATE_WIDTH, GATE_HEIGHT),
                 "buffers": {"input_1": frame}} for frame in frames]
    try:
        server.realize_batch(requests, **kwargs)
    except BatchError:
        pass          # faulted mode may exhaust a request's budget: recorded


def test_fig9_resilience_overhead(resilience_frames):
    configure_pool()
    func = blur_func()
    with PipelineServer(func) as server:
        # Interleave the two gated measurements round-robin, and flip which
        # mode goes first every round: an external load spike lands on both
        # modes instead of inflating whichever happened to be timed second,
        # and the fixed-order bias (the first batch after a pause runs a
        # touch cold) cancels instead of always taxing the same mode.
        _serve_batch(server, resilience_frames)
        _serve_batch(server, resilience_frames, deadline=60.0, retries=2)
        clean_samples: list[float] = []
        guarded_samples: list[float] = []
        round_ratios: list[float] = []
        for round_index in range(ROUNDS):
            time_clean = lambda: time_callable(
                lambda: _serve_batch(server, resilience_frames), repeats=1)
            time_guarded = lambda: time_callable(
                lambda: _serve_batch(server, resilience_frames,
                                     deadline=60.0, retries=2), repeats=1)
            if round_index % 2 == 0:
                clean_seconds, guarded_seconds = time_clean(), time_guarded()
            else:
                guarded_seconds, clean_seconds = time_guarded(), time_clean()
            clean_samples.append(clean_seconds)
            guarded_samples.append(guarded_seconds)
            round_ratios.append(guarded_seconds / clean_seconds)
        # The recorded best_seconds stay best-of-N like every other
        # benchmark, but the overhead *ratio* is the median of per-round
        # guarded/clean ratios: the two modes of one round run back to
        # back, so slow host drift across the measurement window cancels
        # within each pair, and a one-sided spike corrupts one ratio out
        # of twelve instead of an entire pooled median.  (A ratio of two
        # noisy minima swung by ±10% on a jittery single-core host and
        # produced physically-implausible negative "overheads".)
        clean = min(clean_samples)
        guarded = min(guarded_samples)
        clean_median = statistics.median(clean_samples)
        guarded_median = statistics.median(guarded_samples)
        overhead_ratio = statistics.median(round_ratios)

        def faulted_batch():
            with inject(FaultPlan.parse(FAULT_SPEC, seed=5)):
                _serve_batch(server, resilience_frames,
                             deadline=60.0, retries=2)

        faulted = time_callable(faulted_batch, repeats=3)
        stats = server.stats()

    overhead = overhead_ratio - 1.0
    print_table(
        "Figure 9 companion: resilience harness overhead "
        f"({FRAMES} frames, {GATE_WIDTH}x{GATE_HEIGHT}, "
        f"median of {ROUNDS} paired interleaved rounds)",
        ["mode", "best ms", "median ms", "vs clean (paired)"],
        [["clean (faults off)", f"{clean * 1000:.2f}",
          f"{clean_median * 1000:.2f}", "1.00x"],
         ["guarded (deadline+retries)", f"{guarded * 1000:.2f}",
          f"{guarded_median * 1000:.2f}", f"{overhead_ratio:.3f}x"],
         ["faulted (chaos schedule)", f"{faulted * 1000:.2f}", "-",
          f"{faulted / clean_median:.3f}x" if clean_median else "n/a"]])
    size = (GATE_WIDTH, GATE_HEIGHT)
    record_bench("fig9_resilience/clean", clean, engine="default",
                 image_size=size, frames=FRAMES,
                 median_seconds=round(clean_median, 6))
    record_bench("fig9_resilience/guarded", guarded, engine="default",
                 image_size=size, frames=FRAMES, rounds=ROUNDS,
                 median_seconds=round(guarded_median, 6),
                 overhead_vs_clean=round(overhead, 4))
    record_bench("fig9_resilience/faulted", faulted, engine="default",
                 image_size=size, frames=FRAMES,
                 degraded=stats["degraded"], retries=stats["retries"])

    # The gate: with no faults firing, the whole reliability layer —
    # instrumented sites, deadline plumbing, retry/breaker bookkeeping —
    # must be within 3% of the unguarded serving path (plus scheduler
    # jitter slack on millisecond-scale batches).  Gated on the paired
    # median ratio: a single stray scheduler quantum shifts a minimum by
    # ~10% but barely moves the median of a dozen paired rounds.
    assert overhead <= MAX_OVERHEAD + EPSILON_SECONDS / clean_median, (
        f"guarded serving overhead {overhead:+.1%} (median of paired "
        f"rounds) exceeds {MAX_OVERHEAD:.0%}")
