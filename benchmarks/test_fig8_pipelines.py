"""Figure 8: filter pipelines — fusing lifted kernels.

Photoshop pipeline: blur -> invert -> sharpen more.
IrfanView pipeline: sharpen -> solarize -> blur.

The paper's four bars per application (left to right): the original
application running the filters in sequence, the application hosting the
lifted kernels (in-situ / pipeline mode), the standalone lifted kernels run
separately, and the standalone lifted kernels fused.  The headline result is
that fusion gives the biggest win (2.91x / 5.17x over the original sequence).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.halide import FuncPipeline, FusedPipeline
from repro.rejuvenation import (
    apply_lifted_irfanview,
    apply_lifted_photoshop,
    insitu_lifted_photoshop,
    legacy_irfanview_filter,
    legacy_photoshop_filter,
    lift_irfanview_filter,
    lift_photoshop_filter,
)

from conftest import print_table, record_bench, time_callable

PS_PIPELINE = ("blur", "invert", "sharpen_more")
IV_PIPELINE = ("sharpen", "solarize", "blur")
PARAMS = {"threshold": 128, "brightness": 40}


def _ps_legacy_sequence(planes):
    current = planes
    for name in PS_PIPELINE:
        current = legacy_photoshop_filter(name, current, PARAMS)
    return current


def _ps_insitu_sequence(planes):
    current = planes
    for name in PS_PIPELINE:
        lifted = lift_photoshop_filter(name)
        current = insitu_lifted_photoshop(lifted, name, current, PARAMS)
    return current


def _ps_lifted_separate(planes):
    current = planes
    for name in PS_PIPELINE:
        lifted = lift_photoshop_filter(name)
        current = apply_lifted_photoshop(lifted, name, current, PARAMS)
    return current


def _ps_lifted_fused(planes):
    results = {}
    for channel, plane in planes.items():
        pipeline = FusedPipeline()
        for name in PS_PIPELINE:
            lifted = lift_photoshop_filter(name)
            pipeline.add(name, lambda img, lifted=lifted, name=name:
                         apply_lifted_photoshop(lifted, name, {channel: img}, PARAMS)[channel])
        results[channel] = pipeline.run_fused(plane, tile_rows=64)
    return results


def test_fig8_photoshop_pipeline(bench_planes):
    times = {
        "Photoshop (sequence)": time_callable(lambda: _ps_legacy_sequence(bench_planes), 2),
        "replaced (in situ)": time_callable(lambda: _ps_insitu_sequence(bench_planes), 2),
        "standalone separate": time_callable(lambda: _ps_lifted_separate(bench_planes), 2),
        "standalone fused": time_callable(lambda: _ps_lifted_fused(bench_planes), 2),
    }
    baseline = times["Photoshop (sequence)"]
    rows = [[name, f"{seconds * 1000:.1f}", f"{baseline / seconds:.2f}x"]
            for name, seconds in times.items()]
    rows.append(["paper: fused speedup", "-", "2.91x"])
    print_table("Figure 8: Photoshop pipeline (blur -> invert -> sharpen more)",
                ["configuration", "ms", "speedup vs Photoshop"], rows)
    for name, seconds in times.items():
        record_bench(f"fig8_photoshop/{name}", seconds, engine="default")
    # Shape: the standalone lifted pipeline beats the original sequence, and
    # the in-situ variant sits between the original and the standalone runs.
    assert times["standalone separate"] < baseline
    assert times["standalone fused"] < baseline


def _iv_legacy_sequence(image):
    current = image
    for name in IV_PIPELINE:
        current = legacy_irfanview_filter(name, current)
    return current


def _iv_legacy_pipeline_mode(image):
    # IrfanView amortizes its preparation cost when filters run as a pipeline
    # inside one process; model that by doing the conversion once.
    current = image.astype(np.float64)
    for name in IV_PIPELINE:
        current = legacy_irfanview_filter(name, current.astype(np.uint8)).astype(np.float64)
    return current.astype(np.uint8)


def _iv_lifted_separate(image):
    current = image
    for name in IV_PIPELINE:
        lifted = lift_irfanview_filter(name)
        current = apply_lifted_irfanview(lifted, name, current)
    return current


def _iv_lifted_fused(image):
    pipeline = FusedPipeline()
    for name in IV_PIPELINE:
        lifted = lift_irfanview_filter(name)
        pipeline.add(name, lambda img, lifted=lifted, name=name:
                     apply_lifted_irfanview(lifted, name, img))
    return pipeline.run_fused(image, tile_rows=64)


def test_fig8_irfanview_pipeline(bench_interleaved):
    times = {
        "IrfanView (sequence)": time_callable(lambda: _iv_legacy_sequence(bench_interleaved), 2),
        "IrfanView (pipeline)": time_callable(lambda: _iv_legacy_pipeline_mode(bench_interleaved), 2),
        "standalone separate": time_callable(lambda: _iv_lifted_separate(bench_interleaved), 2),
        "standalone fused": time_callable(lambda: _iv_lifted_fused(bench_interleaved), 2),
    }
    baseline = times["IrfanView (sequence)"]
    rows = [[name, f"{seconds * 1000:.1f}", f"{baseline / seconds:.2f}x"]
            for name, seconds in times.items()]
    rows.append(["paper: fused speedup", "-", "5.17x"])
    print_table("Figure 8: IrfanView pipeline (sharpen -> solarize -> blur)",
                ["configuration", "ms", "speedup vs IrfanView"], rows)
    for name, seconds in times.items():
        record_bench(f"fig8_irfanview/{name}", seconds, engine="default")
    assert times["standalone separate"] < baseline
    assert times["standalone fused"] < baseline


def test_fig8_fused_pipeline_benchmark(benchmark, bench_interleaved):
    benchmark(lambda: _iv_lifted_fused(bench_interleaved))


# -- realization engines ------------------------------------------------------


def _ps_func_pipeline(channel: str) -> FuncPipeline:
    """The Photoshop pipeline as Func stages for one colour plane."""
    pipeline = FuncPipeline()
    for name in PS_PIPELINE:
        lifted = lift_photoshop_filter(name)
        kernels = sorted(lifted.kernels, key=lambda k: k.output)
        kernel = kernels["rgb".index(channel)]
        pad = 1 if name in ("blur", "blur_more", "sharpen", "sharpen_more") else 0
        pipeline.add(lifted.funcs[kernel.output],
                     input_name=sorted(kernel.input_names)[0], pad=pad, name=name)
    return pipeline


def _run_engine(pipelines, planes, engine):
    return {channel: pipelines[channel].realize(plane, engine=engine)
            for channel, plane in planes.items()}


def test_fig8_engines_compiled_vs_interp(bench_planes):
    """Headline perf result: compiled-kernel engine vs the tree interpreter.

    Both engines realize the identical lifted pipeline bit-for-bit; the
    compiled engine pays IR fusion and codegen once (kernel cache) and then
    runs fused, CSE'd, narrow-dtype kernels — so fusion happens outside the
    timed loop, like codegen.
    """
    pipelines = {channel: _ps_func_pipeline(channel) for channel in "rgb"}
    fused = {channel: pipeline.fused() for channel, pipeline in pipelines.items()}
    interp_out = _run_engine(pipelines, bench_planes, "interp")
    compiled_out = _run_engine(fused, bench_planes, "compiled")
    for channel in bench_planes:
        np.testing.assert_array_equal(interp_out[channel], compiled_out[channel])

    interp_time = time_callable(
        lambda: _run_engine(pipelines, bench_planes, "interp"), 3)
    compiled_time = time_callable(
        lambda: _run_engine(fused, bench_planes, "compiled"), 3)
    speedup = interp_time / compiled_time
    print_table("Figure 8 (engines): Photoshop pipeline realization",
                ["engine", "ms", "speedup"],
                [["interpreter", f"{interp_time * 1000:.1f}", "1.00x"],
                 ["compiled (fused)", f"{compiled_time * 1000:.1f}",
                  f"{speedup:.2f}x"]])
    record_bench("fig8_engines/interp", interp_time, engine="interp")
    record_bench("fig8_engines/compiled", compiled_time, engine="compiled",
                 speedup=round(speedup, 2))
    assert speedup >= 3.0, f"compiled engine only {speedup:.2f}x faster"
