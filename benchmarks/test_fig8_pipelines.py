"""Figure 8: filter pipelines — fusing lifted kernels.

Photoshop pipeline: blur -> invert -> sharpen more.
IrfanView pipeline: sharpen -> solarize -> blur.

The paper's four bars per application (left to right): the original
application running the filters in sequence, the application hosting the
lifted kernels (in-situ / pipeline mode), the standalone lifted kernels run
separately, and the standalone lifted kernels fused.  The headline result is
that fusion gives the biggest win (2.91x / 5.17x over the original sequence).
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.halide import (
    FuncPipeline,
    FuncStage,
    FusedPipeline,
    Schedule,
    configure_pool,
    pool_size,
)
from repro.halide.parallel import parallel_enabled
from repro.rejuvenation import (
    apply_lifted_irfanview,
    apply_lifted_photoshop,
    insitu_lifted_photoshop,
    legacy_irfanview_filter,
    legacy_photoshop_filter,
    lift_irfanview_filter,
    lift_photoshop_filter,
)

from conftest import (
    LARGE_HEIGHT,
    LARGE_WIDTH,
    print_table,
    record_bench,
    time_callable,
)

PS_PIPELINE = ("blur", "invert", "sharpen_more")
IV_PIPELINE = ("sharpen", "solarize", "blur")
PARAMS = {"threshold": 128, "brightness": 40}


def _ps_legacy_sequence(planes):
    current = planes
    for name in PS_PIPELINE:
        current = legacy_photoshop_filter(name, current, PARAMS)
    return current


def _ps_insitu_sequence(planes):
    current = planes
    for name in PS_PIPELINE:
        lifted = lift_photoshop_filter(name)
        current = insitu_lifted_photoshop(lifted, name, current, PARAMS)
    return current


def _ps_lifted_separate(planes):
    current = planes
    for name in PS_PIPELINE:
        lifted = lift_photoshop_filter(name)
        current = apply_lifted_photoshop(lifted, name, current, PARAMS)
    return current


def _ps_lifted_fused(planes):
    results = {}
    for channel, plane in planes.items():
        pipeline = FusedPipeline()
        for name in PS_PIPELINE:
            lifted = lift_photoshop_filter(name)
            pipeline.add(name, lambda img, lifted=lifted, name=name:
                         apply_lifted_photoshop(lifted, name, {channel: img}, PARAMS)[channel])
        results[channel] = pipeline.run_fused(plane, tile_rows=64)
    return results


def test_fig8_photoshop_pipeline(bench_planes):
    times = {
        "Photoshop (sequence)": time_callable(lambda: _ps_legacy_sequence(bench_planes), 2),
        "replaced (in situ)": time_callable(lambda: _ps_insitu_sequence(bench_planes), 2),
        "standalone separate": time_callable(lambda: _ps_lifted_separate(bench_planes), 2),
        "standalone fused": time_callable(lambda: _ps_lifted_fused(bench_planes), 2),
    }
    baseline = times["Photoshop (sequence)"]
    rows = [[name, f"{seconds * 1000:.1f}", f"{baseline / seconds:.2f}x"]
            for name, seconds in times.items()]
    rows.append(["paper: fused speedup", "-", "2.91x"])
    print_table("Figure 8: Photoshop pipeline (blur -> invert -> sharpen more)",
                ["configuration", "ms", "speedup vs Photoshop"], rows)
    for name, seconds in times.items():
        record_bench(f"fig8_photoshop/{name}", seconds, engine="default")
    # Shape: the standalone lifted pipeline beats the original sequence, and
    # the in-situ variant sits between the original and the standalone runs.
    assert times["standalone separate"] < baseline
    assert times["standalone fused"] < baseline


def _iv_legacy_sequence(image):
    current = image
    for name in IV_PIPELINE:
        current = legacy_irfanview_filter(name, current)
    return current


def _iv_legacy_pipeline_mode(image):
    # IrfanView amortizes its preparation cost when filters run as a pipeline
    # inside one process; model that by doing the conversion once.
    current = image.astype(np.float64)
    for name in IV_PIPELINE:
        current = legacy_irfanview_filter(name, current.astype(np.uint8)).astype(np.float64)
    return current.astype(np.uint8)


def _iv_lifted_separate(image):
    current = image
    for name in IV_PIPELINE:
        lifted = lift_irfanview_filter(name)
        current = apply_lifted_irfanview(lifted, name, current)
    return current


def _iv_lifted_fused(image):
    pipeline = FusedPipeline()
    for name in IV_PIPELINE:
        lifted = lift_irfanview_filter(name)
        pipeline.add(name, lambda img, lifted=lifted, name=name:
                     apply_lifted_irfanview(lifted, name, img))
    return pipeline.run_fused(image, tile_rows=64)


def test_fig8_irfanview_pipeline(bench_interleaved):
    times = {
        "IrfanView (sequence)": time_callable(lambda: _iv_legacy_sequence(bench_interleaved), 2),
        "IrfanView (pipeline)": time_callable(lambda: _iv_legacy_pipeline_mode(bench_interleaved), 2),
        "standalone separate": time_callable(lambda: _iv_lifted_separate(bench_interleaved), 2),
        "standalone fused": time_callable(lambda: _iv_lifted_fused(bench_interleaved), 2),
    }
    baseline = times["IrfanView (sequence)"]
    rows = [[name, f"{seconds * 1000:.1f}", f"{baseline / seconds:.2f}x"]
            for name, seconds in times.items()]
    rows.append(["paper: fused speedup", "-", "5.17x"])
    print_table("Figure 8: IrfanView pipeline (sharpen -> solarize -> blur)",
                ["configuration", "ms", "speedup vs IrfanView"], rows)
    for name, seconds in times.items():
        record_bench(f"fig8_irfanview/{name}", seconds, engine="default")
    assert times["standalone separate"] < baseline
    assert times["standalone fused"] < baseline


def test_fig8_fused_pipeline_benchmark(benchmark, bench_interleaved):
    benchmark(lambda: _iv_lifted_fused(bench_interleaved))


# -- realization engines ------------------------------------------------------


def _ps_func_pipeline(channel: str) -> FuncPipeline:
    """The Photoshop pipeline as Func stages for one colour plane."""
    pipeline = FuncPipeline()
    for name in PS_PIPELINE:
        lifted = lift_photoshop_filter(name)
        kernels = sorted(lifted.kernels, key=lambda k: k.output)
        kernel = kernels["rgb".index(channel)]
        pad = 1 if name in ("blur", "blur_more", "sharpen", "sharpen_more") else 0
        pipeline.add(lifted.funcs[kernel.output],
                     input_name=sorted(kernel.input_names)[0], pad=pad, name=name)
    return pipeline


def _run_engine(pipelines, planes, engine):
    return {channel: pipelines[channel].realize(plane, engine=engine)
            for channel, plane in planes.items()}


def test_fig8_engines_compiled_vs_interp(bench_planes):
    """Headline perf result: compiled-kernel engine vs the tree interpreter.

    Both engines realize the identical lifted pipeline bit-for-bit; the
    compiled engine pays IR fusion and codegen once (kernel cache) and then
    runs fused, CSE'd, narrow-dtype kernels — so fusion happens outside the
    timed loop, like codegen.
    """
    pipelines = {channel: _ps_func_pipeline(channel) for channel in "rgb"}
    fused = {channel: pipeline.fused() for channel, pipeline in pipelines.items()}
    interp_out = _run_engine(pipelines, bench_planes, "interp")
    compiled_out = _run_engine(fused, bench_planes, "compiled")
    for channel in bench_planes:
        np.testing.assert_array_equal(interp_out[channel], compiled_out[channel])

    interp_time = time_callable(
        lambda: _run_engine(pipelines, bench_planes, "interp"), 3)
    compiled_time = time_callable(
        lambda: _run_engine(fused, bench_planes, "compiled"), 3)
    speedup = interp_time / compiled_time
    print_table("Figure 8 (engines): Photoshop pipeline realization",
                ["engine", "ms", "speedup"],
                [["interpreter", f"{interp_time * 1000:.1f}", "1.00x"],
                 ["compiled (fused)", f"{compiled_time * 1000:.1f}",
                  f"{speedup:.2f}x"]])
    record_bench("fig8_engines/interp", interp_time, engine="interp")
    record_bench("fig8_engines/compiled", compiled_time, engine="compiled",
                 speedup=round(speedup, 2))
    assert speedup >= 3.0, f"compiled engine only {speedup:.2f}x faster"


# -- multicore tile executor + batched serving --------------------------------


def _scheduled(pipeline: FuncPipeline, tile: tuple[int, int],
               parallel: bool) -> FuncPipeline:
    """The same pipeline with every stage re-scheduled (copies, not mutation:
    the underlying Funcs come from the shared lru-cached lift results)."""
    stages = []
    for stage in pipeline.stages:
        func = replace(stage.func, schedule=Schedule(
            tile_x=tile[0], tile_y=tile[1], parallel=parallel))
        stages.append(FuncStage(name=stage.name, func=func,
                                input_name=stage.input_name, pad=stage.pad,
                                pad_width=stage.pad_width))
    return FuncPipeline(stages)


def test_fig8_parallel_vs_serial(bench_planes_large):
    """Multicore headline: tile-parallel vs serial compiled realization.

    The same fused Photoshop pipeline runs tiled 128x64 at 960x640 with and
    without ``Schedule.parallel``; outputs must be bit-identical, and on a
    multicore host (>= 4 cores) the parallel schedule must be >= 1.5x faster.
    On smaller hosts the numbers are still recorded for the trajectory.
    """
    configure_pool()           # fresh pool sized to this machine
    fused = {channel: _ps_func_pipeline(channel).fused() for channel in "rgb"}
    serial = {channel: _scheduled(p, (128, 64), False)
              for channel, p in fused.items()}
    parallel = {channel: _scheduled(p, (128, 64), True)
                for channel, p in fused.items()}

    serial_out = _run_engine(serial, bench_planes_large, "compiled")
    parallel_out = _run_engine(parallel, bench_planes_large, "compiled")
    for channel in bench_planes_large:
        np.testing.assert_array_equal(serial_out[channel], parallel_out[channel])

    serial_time = time_callable(
        lambda: _run_engine(serial, bench_planes_large, "compiled"), 3)
    parallel_time = time_callable(
        lambda: _run_engine(parallel, bench_planes_large, "compiled"), 3)
    speedup = serial_time / parallel_time
    cores = os.cpu_count() or 1
    print_table(f"Figure 8 (parallel): Photoshop pipeline at "
                f"{LARGE_WIDTH}x{LARGE_HEIGHT}, {pool_size()} workers",
                ["schedule", "ms", "speedup"],
                [["tile(128,64) serial", f"{serial_time * 1000:.1f}", "1.00x"],
                 ["tile(128,64).parallel", f"{parallel_time * 1000:.1f}",
                  f"{speedup:.2f}x"]])
    record_bench("fig8_parallel/serial", serial_time, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT))
    record_bench("fig8_parallel/parallel", parallel_time, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 speedup=round(speedup, 2), workers=pool_size(), cores=cores)
    # Gate on the *effective* pool, not raw core count: REPRO_NUM_THREADS /
    # REPRO_PARALLEL legitimately force serial execution on multicore hosts.
    if pool_size() >= 4 and parallel_enabled():
        assert speedup >= 1.5, f"parallel tiles only {speedup:.2f}x faster"


def test_fig8_batched_throughput(bench_planes_large):
    """Serving scenario: realize_batch vs a serial loop over the same frames.

    Eight 960x640 frames go through one fused pipeline; the batched service
    compiles once and overlaps whole frames across the worker pool, so on a
    multicore host it must sustain more frames/sec than the serial loop.
    """
    configure_pool()
    pipeline = _scheduled(_ps_func_pipeline("r").fused(), (0, 0), False)
    base = bench_planes_large["r"]
    frames = [np.roll(base, shift, axis=0).copy() for shift in range(8)]

    pipeline.realize(frames[0])                       # warm the kernel cache
    start = time.perf_counter()
    serial_outputs = [pipeline.realize(frame) for frame in frames]
    serial_wall = time.perf_counter() - start
    serial_fps = len(frames) / serial_wall

    batch = pipeline.realize_batch(frames)
    for serial_output, batched_output in zip(serial_outputs, batch.outputs):
        np.testing.assert_array_equal(serial_output, batched_output)

    cores = os.cpu_count() or 1
    print_table(f"Figure 8 (serving): {len(frames)} frames at "
                f"{LARGE_WIDTH}x{LARGE_HEIGHT}, {pool_size()} workers",
                ["configuration", "wall ms", "frames/sec"],
                [["serial loop", f"{serial_wall * 1000:.1f}",
                  f"{serial_fps:.1f}"],
                 ["realize_batch", f"{batch.wall_seconds * 1000:.1f}",
                  f"{batch.frames_per_second:.1f}"]])
    record_bench("fig8_serving/serial_loop", serial_wall, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 frames=len(frames), fps=round(serial_fps, 2))
    record_bench("fig8_serving/realize_batch", batch.wall_seconds,
                 engine="compiled", image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 frames=len(frames), fps=round(batch.frames_per_second, 2),
                 workers=pool_size(), cores=cores)
    if pool_size() >= 4 and parallel_enabled():
        assert batch.frames_per_second > serial_fps, (
            f"batched serving ({batch.frames_per_second:.1f} fps) did not beat "
            f"the serial loop ({serial_fps:.1f} fps)")
