"""Figure 8: filter pipelines — fusing lifted kernels.

Photoshop pipeline: blur -> invert -> sharpen more.
IrfanView pipeline: sharpen -> solarize -> blur.

The paper's four bars per application (left to right): the original
application running the filters in sequence, the application hosting the
lifted kernels (in-situ / pipeline mode), the standalone lifted kernels run
separately, and the standalone lifted kernels fused.  The headline result is
that fusion gives the biggest win (2.91x / 5.17x over the original sequence).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.halide import FusedPipeline
from repro.rejuvenation import (
    apply_lifted_irfanview,
    apply_lifted_photoshop,
    insitu_lifted_photoshop,
    legacy_irfanview_filter,
    legacy_photoshop_filter,
    lift_irfanview_filter,
    lift_photoshop_filter,
)

from conftest import print_table, time_callable

PS_PIPELINE = ("blur", "invert", "sharpen_more")
IV_PIPELINE = ("sharpen", "solarize", "blur")
PARAMS = {"threshold": 128, "brightness": 40}


def _ps_legacy_sequence(planes):
    current = planes
    for name in PS_PIPELINE:
        current = legacy_photoshop_filter(name, current, PARAMS)
    return current


def _ps_insitu_sequence(planes):
    current = planes
    for name in PS_PIPELINE:
        lifted = lift_photoshop_filter(name)
        current = insitu_lifted_photoshop(lifted, name, current, PARAMS)
    return current


def _ps_lifted_separate(planes):
    current = planes
    for name in PS_PIPELINE:
        lifted = lift_photoshop_filter(name)
        current = apply_lifted_photoshop(lifted, name, current, PARAMS)
    return current


def _ps_lifted_fused(planes):
    results = {}
    for channel, plane in planes.items():
        pipeline = FusedPipeline()
        for name in PS_PIPELINE:
            lifted = lift_photoshop_filter(name)
            pipeline.add(name, lambda img, lifted=lifted, name=name:
                         apply_lifted_photoshop(lifted, name, {channel: img}, PARAMS)[channel])
        results[channel] = pipeline.run_fused(plane, tile_rows=64)
    return results


def test_fig8_photoshop_pipeline(bench_planes):
    times = {
        "Photoshop (sequence)": time_callable(lambda: _ps_legacy_sequence(bench_planes), 2),
        "replaced (in situ)": time_callable(lambda: _ps_insitu_sequence(bench_planes), 2),
        "standalone separate": time_callable(lambda: _ps_lifted_separate(bench_planes), 2),
        "standalone fused": time_callable(lambda: _ps_lifted_fused(bench_planes), 2),
    }
    baseline = times["Photoshop (sequence)"]
    rows = [[name, f"{seconds * 1000:.1f}", f"{baseline / seconds:.2f}x"]
            for name, seconds in times.items()]
    rows.append(["paper: fused speedup", "-", "2.91x"])
    print_table("Figure 8: Photoshop pipeline (blur -> invert -> sharpen more)",
                ["configuration", "ms", "speedup vs Photoshop"], rows)
    # Shape: the standalone lifted pipeline beats the original sequence, and
    # the in-situ variant sits between the original and the standalone runs.
    assert times["standalone separate"] < baseline
    assert times["standalone fused"] < baseline


def _iv_legacy_sequence(image):
    current = image
    for name in IV_PIPELINE:
        current = legacy_irfanview_filter(name, current)
    return current


def _iv_legacy_pipeline_mode(image):
    # IrfanView amortizes its preparation cost when filters run as a pipeline
    # inside one process; model that by doing the conversion once.
    current = image.astype(np.float64)
    for name in IV_PIPELINE:
        current = legacy_irfanview_filter(name, current.astype(np.uint8)).astype(np.float64)
    return current.astype(np.uint8)


def _iv_lifted_separate(image):
    current = image
    for name in IV_PIPELINE:
        lifted = lift_irfanview_filter(name)
        current = apply_lifted_irfanview(lifted, name, current)
    return current


def _iv_lifted_fused(image):
    pipeline = FusedPipeline()
    for name in IV_PIPELINE:
        lifted = lift_irfanview_filter(name)
        pipeline.add(name, lambda img, lifted=lifted, name=name:
                     apply_lifted_irfanview(lifted, name, img))
    return pipeline.run_fused(image, tile_rows=64)


def test_fig8_irfanview_pipeline(bench_interleaved):
    times = {
        "IrfanView (sequence)": time_callable(lambda: _iv_legacy_sequence(bench_interleaved), 2),
        "IrfanView (pipeline)": time_callable(lambda: _iv_legacy_pipeline_mode(bench_interleaved), 2),
        "standalone separate": time_callable(lambda: _iv_lifted_separate(bench_interleaved), 2),
        "standalone fused": time_callable(lambda: _iv_lifted_fused(bench_interleaved), 2),
    }
    baseline = times["IrfanView (sequence)"]
    rows = [[name, f"{seconds * 1000:.1f}", f"{baseline / seconds:.2f}x"]
            for name, seconds in times.items()]
    rows.append(["paper: fused speedup", "-", "5.17x"])
    print_table("Figure 8: IrfanView pipeline (sharpen -> solarize -> blur)",
                ["configuration", "ms", "speedup vs IrfanView"], rows)
    assert times["standalone separate"] < baseline
    assert times["standalone fused"] < baseline


def test_fig8_fused_pipeline_benchmark(benchmark, bench_interleaved):
    benchmark(lambda: _iv_lifted_fused(bench_interleaved))
