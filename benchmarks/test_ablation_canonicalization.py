"""Ablation: what tree canonicalization buys (DESIGN.md design-choice check).

Two measurements on the box-blur trace:

* cluster count with and without canonicalization — without the cancellation
  rewrite, the sliding-window trees all differ in shape (the window expression
  grows with the column index), so clustering degenerates and the affine solve
  has no hope; with it, every output pixel falls into one cluster of 9-point
  trees, which is what makes box blur liftable at all (paper section 6.3);
* the cost of the lift itself, benchmarked end-to-end.
"""

from __future__ import annotations

import pytest

from repro.apps import PhotoshopApp
from repro.core import lift_filter
from repro.core.symbolic import cluster_trees
from repro.ir import structural_signature

from conftest import print_table


@pytest.fixture(scope="module")
def box_blur_result():
    app = PhotoshopApp(width=12, height=9, seed=5)
    return lift_filter(app, "box_blur")


def test_ablation_canonicalization_cluster_counts(box_blur_result):
    result = box_blur_result
    canonical_shapes = {structural_signature(tree.expr)
                        for tree in result.concrete_trees}
    canonical_sizes = {tree.node_count for tree in result.concrete_trees}
    # Without the sum-of-terms cancellation, the sliding-window trees grow
    # with the column index: their raw sizes are all different shapes.
    raw_sizes = {tree.raw_node_count for tree in result.concrete_trees}
    rows = [
        ["with canonicalization", len(canonical_shapes), min(canonical_sizes),
         max(canonical_sizes)],
        ["without cancellation (raw trees)", f">= {len(raw_sizes)}", min(raw_sizes),
         max(raw_sizes)],
    ]
    print_table("Ablation: canonicalization on the sliding-window box blur",
                ["configuration", "distinct tree shapes", "min nodes", "max nodes"], rows)
    # One canonical shape per colour plane; raw trees span many shapes and
    # grow toward the end of each scanline.
    assert len(canonical_shapes) <= 3
    assert len(raw_sizes) > 3 * len(canonical_shapes)
    assert max(raw_sizes) > 3 * max(canonical_sizes)
    assert all(all(c.support > 1 for c in k.clusters) for k in result.kernels)


def test_ablation_lift_cost_benchmark(benchmark):
    app = PhotoshopApp(width=12, height=9, seed=5)
    result = benchmark(lambda: lift_filter(app, "box_blur"))
    assert result.kernels
