"""Figure 6: code localization and extraction statistics per Photoshop filter.

Regenerates the paper's per-filter table: total basic blocks executed, blocks
surviving coverage differencing, blocks in the selected filter function,
static instructions in the filter function, memory-dump size, dynamic
instructions traced and concrete tree sizes.  Absolute values differ (the
simulated application is far smaller than Photoshop), but the progressive
narrowing the table demonstrates — thousands of blocks down to one function —
is reproduced.
"""

from __future__ import annotations

import pytest

from repro.apps import PhotoshopApp
from repro.core import lift_filter

from conftest import print_table

#: The paper's Figure 6 rows (total BB, diff BB, filter-function BB, static
#: instructions, dynamic instructions, tree size) for reference printing.
PAPER_FIG6 = {
    "invert": (490663, 3401, 11, 70, 5520, "3"),
    "blur": (500850, 3850, 14, 328, 64644, "13"),
    "blur_more": (499247, 2825, 16, 189, 111664, "62"),
    "sharpen": (492433, 3027, 30, 351, 79369, "31"),
    "sharpen_more": (493608, 3054, 27, 426, 105374, "55"),
    "threshold": (491651, 2728, 60, 363, 45861, "8/6/19"),
    "box_blur": (500297, 3306, 94, 534, 125254, "253"),
    "sharpen_edges": (499086, 2490, 11, 63, 80628, "33"),
    "despeckle": (499247, 2825, 16, 189, 111664, "62"),
    "equalize": (501669, 2771, 47, 198, 38243, "6"),
    "brightness": (499292, 3012, 10, 54, 21645, "3"),
}

FILTERS = list(PAPER_FIG6)


@pytest.fixture(scope="module")
def stats_rows():
    app = PhotoshopApp(width=16, height=12, seed=7)
    rows = []
    for name in FILTERS:
        result = lift_filter(app, name)
        stats = result.statistics()
        tree_sizes = "/".join(str(s) for s in stats["tree_sizes"][:3])
        rows.append([name, stats["total_blocks"], stats["diff_blocks"],
                     stats["filter_function_blocks"], stats["static_instructions"],
                     stats["dynamic_instructions"], tree_sizes,
                     "/".join(str(v) for v in PAPER_FIG6[name][2:4])])
    return rows


def test_fig6_table(stats_rows):
    print_table(
        "Figure 6: code localization and extraction statistics",
        ["filter", "total BB", "diff BB", "filter fn BB", "static ins",
         "dynamic ins", "tree sizes", "paper(fnBB/ins)"],
        stats_rows)
    for row in stats_rows:
        name, total_bb, diff_bb, fn_bb, static_ins, dyn_ins = row[0], row[1], row[2], row[3], row[4], row[5]
        # Progressive narrowing: diff < total, filter function blocks < diff.
        assert diff_bb < total_bb, name
        assert fn_bb <= diff_bb, name
        assert static_ins > 0 and dyn_ins > 0, name


def test_fig6_benchmark_localization(benchmark):
    app = PhotoshopApp(width=16, height=12, seed=7)
    result = benchmark(lambda: lift_filter(app, "blur"))
    assert result.kernels
