"""Figure 9: in-situ replacement of Photoshop's filters with lifted kernels.

The lifted kernels run inside the host's tile driver, constrained by its tile
granularity; the paper's average speedup drops to 1.12x, box blur regresses
further (0.69x), and the partially-lifted filters (equalize, brightness) sit
at roughly 1x.
"""

from __future__ import annotations

import pytest

from repro.rejuvenation import (
    insitu_lifted_photoshop,
    legacy_photoshop_filter,
    lift_photoshop_filter,
)

from conftest import print_table, time_callable

PAPER_SPEEDUPS = {
    "invert": 1.10, "blur": 1.28, "blur_more": 1.02, "sharpen": 1.39,
    "sharpen_more": 1.45, "threshold": 1.37, "box_blur": 0.69,
    "sharpen_edges": 1.10, "despeckle": 1.01, "equalize": 0.93, "brightness": 0.99,
}
PARAMS = {"threshold": 128, "brightness": 40}


@pytest.fixture(scope="module")
def fig9_rows(bench_planes):
    rows = []
    for name, paper in PAPER_SPEEDUPS.items():
        lifted = lift_photoshop_filter(name)
        legacy_time = time_callable(lambda: legacy_photoshop_filter(name, bench_planes, PARAMS), 2)
        insitu_time = time_callable(lambda: insitu_lifted_photoshop(lifted, name,
                                                                    bench_planes, PARAMS), 2)
        speedup = legacy_time / insitu_time if insitu_time else float("inf")
        rows.append([name, f"{legacy_time * 1000:.1f}", f"{insitu_time * 1000:.1f}",
                     f"{speedup:.2f}x", f"{paper:.2f}x"])
    return rows


def test_fig9_insitu_table(fig9_rows, bench_planes):
    print_table("Figure 9: Photoshop in-situ replacement",
                ["filter", "Photoshop ms", "replaced ms", "speedup", "paper speedup"],
                fig9_rows)
    speedups = {row[0]: float(row[3].rstrip("x")) for row in fig9_rows}
    fully = ["invert", "blur", "blur_more", "sharpen", "sharpen_more", "threshold"]
    # Shape: fully-lifted filters still improve, but by less than standalone
    # (compare Figure 7); partially-lifted filters stay near 1x.
    assert sum(1 for n in fully if speedups[n] > 1.0) >= 3, speedups
    # Partially-lifted filters stay close to 1x (the host still owns most of
    # the work); allow generous slack since these are millisecond-scale runs.
    for name in ("equalize", "brightness", "despeckle", "sharpen_edges"):
        assert 0.6 <= speedups[name] <= 2.0, (name, speedups[name])


def test_fig9_insitu_blur_benchmark(benchmark, bench_planes):
    lifted = lift_photoshop_filter("blur")
    benchmark(lambda: insitu_lifted_photoshop(lifted, "blur", bench_planes, PARAMS))
