"""Locality scheduling: compute_root vs compute_at for a two-stage blur.

The architectural claim behind the lowered loop-nest IR: a multi-stage
stencil pipeline scheduled ``compute_at`` materializes each producer into a
tile-plus-ghost-zone scratch buffer that stays cache-resident, instead of a
full-frame intermediate that round-trips through memory between stages.
Both schedules execute the *same* lifted blur kernel through the same
backend and are bit-identical; only the loop nest differs.

Records ``fig8_locality/compute_root`` and ``fig8_locality/compute_at`` in
BENCH_results.json (with the measured speedup and scratch sizes), and
asserts the scratch buffer really is tile-sized — the acceptance criterion
of the lowering work.
"""

from __future__ import annotations

import statistics
from dataclasses import replace

import numpy as np

from repro.halide import FuncPipeline, Schedule
from repro.rejuvenation import lift_photoshop_filter

from conftest import LARGE_HEIGHT, LARGE_WIDTH, print_table, record_bench, \
    time_callable

#: compute_at tile (width x height): full-width strips keep the NumPy ops
#: long while the working set (tile + ghost rows of one producer) fits in
#: cache.
TILE_W, TILE_H = 480, 320

#: Paired interleaved rounds for the speedup gate (same discipline as
#: fig9_resilience): one-shot ratios occasionally catch a single stalled or
#: turbo sample and swing 0.2x-2x on this shared host; the median of paired
#: per-round ratios is stable.
ROUNDS = 12


def _two_stage_blur(mode: str) -> FuncPipeline:
    """blur(blur(frame)) from the lifted Photoshop blur kernel.

    Fresh Func copies per call — the lift results are shared via the lru
    cache, so schedules must never mutate the cached objects.
    """
    lifted = lift_photoshop_filter("blur")
    kernel = sorted(lifted.kernels, key=lambda k: k.output)[0]
    func = lifted.funcs[kernel.output]
    input_name = sorted(kernel.input_names)[0]
    first = replace(func, schedule=Schedule())
    second = replace(func, schedule=Schedule())
    pipeline = FuncPipeline()
    pipeline.add(first, input_name=input_name, pad=1, name="blur1")
    pipeline.add(second, input_name=input_name, pad=1, name="blur2")
    if mode == "at":
        second.tile(TILE_W, TILE_H)
        first.compute_at(second, "x_1")
    elif mode == "root":
        first.compute_root()
        second.compute_root()
    return pipeline


def test_fig8_locality_compute_at_vs_root(bench_planes_large):
    frame = bench_planes_large["r"]

    root = _two_stage_blur("root")
    fused = _two_stage_blur("at")
    root_stats: dict = {}
    fused_stats: dict = {}
    root_out = root.realize(frame, engine="compiled", stats=root_stats)
    fused_out = fused.realize(frame, engine="compiled", stats=fused_stats)
    np.testing.assert_array_equal(root_out, fused_out)

    # Acceptance: the compute_at producer materializes tile + ghost zone
    # (the 3x3 blur reads one ghost row/column on each side), never the full frame.
    lowered = fused.lower(frame.shape)
    producer = lowered.decisions[0]
    assert producer.level == "at"
    assert producer.scratch_extent == (TILE_H + 2, TILE_W + 2)
    scratch_shapes = fused_stats["scratch_shapes"]
    (scratch_shape,) = scratch_shapes.values()
    assert scratch_shape == (TILE_H + 2, TILE_W + 2)
    assert fused_stats["scratch_peak_elems"] < frame.size // 3
    # compute_root materializes the full frame between the stages.
    (root_shape,) = root_stats["scratch_shapes"].values()
    assert root_shape == frame.shape

    root_samples: list[float] = []
    fused_samples: list[float] = []
    ratios: list[float] = []
    for round_index in range(ROUNDS):
        if round_index % 2 == 0:
            r = time_callable(lambda: root.realize(frame, engine="compiled"), 1)
            f = time_callable(lambda: fused.realize(frame, engine="compiled"), 1)
        else:
            f = time_callable(lambda: fused.realize(frame, engine="compiled"), 1)
            r = time_callable(lambda: root.realize(frame, engine="compiled"), 1)
        root_samples.append(r)
        fused_samples.append(f)
        ratios.append(r / f)
    root_time = statistics.median(root_samples)
    fused_time = statistics.median(fused_samples)
    speedup = statistics.median(ratios)

    print_table(
        f"Figure 8 (locality): two-stage blur at {LARGE_WIDTH}x{LARGE_HEIGHT} "
        f"(median of {ROUNDS} paired rounds)",
        ["schedule", "ms", "speedup", "intermediate"],
        [["compute_root", f"{root_time * 1000:.1f}", "1.00x",
          f"{root_shape[0]}x{root_shape[1]} (full frame)"],
         [f"compute_at tile({TILE_W},{TILE_H})", f"{fused_time * 1000:.1f}",
          f"{speedup:.2f}x",
          f"{scratch_shape[0]}x{scratch_shape[1]} (tile + ghost)"]])

    record_bench("fig8_locality/compute_root", root_time, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 intermediate_elems=int(np.prod(root_shape)))
    record_bench("fig8_locality/compute_at", fused_time, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 speedup=round(speedup, 2),
                 tile=[TILE_W, TILE_H],
                 scratch_elems=int(np.prod(scratch_shape)))

    # The locality win must be measurable (typical hosts show ~1.5-2x; the
    # CI regression gate guards the magnitude, this guards the direction —
    # the floor is low because shared runners are noisy and huge-cache hosts
    # shrink the full-frame penalty).
    assert speedup >= 1.02, f"compute_at only {speedup:.2f}x vs compute_root"


def test_fig8_locality_interp_oracle_agreement(bench_planes_large):
    """Both schedules stay bit-identical to the interpreter oracle."""
    frame = bench_planes_large["r"][:160, :240]
    oracle = _two_stage_blur("none").realize(frame, engine="interp")
    for mode in ("root", "at"):
        for engine in ("interp", "compiled"):
            out = _two_stage_blur(mode).realize(frame, engine=engine)
            np.testing.assert_array_equal(out, oracle)
