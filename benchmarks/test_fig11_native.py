"""Native whole-nest C backend vs the compiled-NumPy engine (figure 11).

The perf claim of the native backend: compiling the *entire* lowered loop
nest to one shared object removes the per-tile Python dispatch and NumPy
temporaries that dominate the compiled engine on cache-sized tiles, and
releasing the GIL inside segment calls lets the tile pool scale on real
cores instead of time-slicing one interpreter.

Records ``fig11_native/compiled``, ``fig11_native/native`` and
``fig11_native/native_parallel`` in BENCH_results.json.  Gates (both on the
paired-round median-of-ratios discipline from fig8/fig9, robust to shared-
host timing noise):

* native >= 2x over compiled on the two-stage 960x640 blur — only on hosts
  with a C toolchain + cffi;
* native parallel >= 2x over native serial — only with >= 4 effective pool
  workers (GIL-free scaling needs real cores).
"""

from __future__ import annotations

import os
import statistics
from dataclasses import replace

import numpy as np
import pytest

from repro.halide import FuncPipeline, Schedule, configure_pool
from repro.halide.backends import native as native_mod
from repro.halide.backends.native import native_stats, toolchain_path
from repro.halide.parallel import parallel_enabled, pool_size
from repro.rejuvenation import lift_photoshop_filter

from conftest import LARGE_HEIGHT, LARGE_WIDTH, print_table, record_bench, \
    time_callable

TILE_W, TILE_H = 480, 320

#: Paired interleaved rounds (same discipline as fig8_locality): the median
#: of per-round ratios shrugs off a single stalled or turbo sample.
ROUNDS = 12

HAVE_NATIVE = toolchain_path() is not None and native_mod.cffi is not None


def _two_stage_blur(mode: str) -> FuncPipeline:
    """blur(blur(frame)) from the lifted Photoshop blur kernel."""
    lifted = lift_photoshop_filter("blur")
    kernel = sorted(lifted.kernels, key=lambda k: k.output)[0]
    func = lifted.funcs[kernel.output]
    input_name = sorted(kernel.input_names)[0]
    first = replace(func, schedule=Schedule())
    second = replace(func, schedule=Schedule())
    pipeline = FuncPipeline()
    pipeline.add(first, input_name=input_name, pad=1, name="blur1")
    pipeline.add(second, input_name=input_name, pad=1, name="blur2")
    second.tile(TILE_W, TILE_H)
    first.compute_at(second, "x_1")
    if mode == "parallel":
        second.parallel()
    return pipeline


def _paired_ratio(slow_fn, fast_fn):
    """Median times and median of per-round slow/fast ratios, interleaved."""
    slow_samples: list[float] = []
    fast_samples: list[float] = []
    ratios: list[float] = []
    for round_index in range(ROUNDS):
        if round_index % 2 == 0:
            s = time_callable(slow_fn, 1)
            f = time_callable(fast_fn, 1)
        else:
            f = time_callable(fast_fn, 1)
            s = time_callable(slow_fn, 1)
        slow_samples.append(s)
        fast_samples.append(f)
        ratios.append(s / f)
    return (statistics.median(slow_samples), statistics.median(fast_samples),
            statistics.median(ratios))


@pytest.mark.skipif(not HAVE_NATIVE,
                    reason="no C toolchain / cffi: native degrades, nothing "
                           "to measure")
def test_fig11_native_vs_compiled(bench_planes_large):
    frame = bench_planes_large["r"]
    pipeline = _two_stage_blur("serial")

    # Warm both engines (native compiles its .so here) and pin correctness.
    before = native_stats()["native_frames"]
    native_out = pipeline.realize(frame, engine="native")
    assert native_stats()["native_frames"] == before + 1, \
        "native degraded on a toolchain host — the benchmark would be a lie"
    np.testing.assert_array_equal(
        native_out, pipeline.realize(frame, engine="compiled"))

    compiled_time, native_time, speedup = _paired_ratio(
        lambda: pipeline.realize(frame, engine="compiled"),
        lambda: pipeline.realize(frame, engine="native"))

    print_table(
        f"Figure 11 (native): two-stage blur at {LARGE_WIDTH}x{LARGE_HEIGHT} "
        f"(median of {ROUNDS} paired rounds)",
        ["engine", "ms", "speedup"],
        [["compiled (NumPy tiles)", f"{compiled_time * 1000:.1f}", "1.00x"],
         ["native (whole-nest C)", f"{native_time * 1000:.1f}",
          f"{speedup:.2f}x"]])
    record_bench("fig11_native/compiled", compiled_time, engine="compiled",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 tile=[TILE_W, TILE_H])
    record_bench("fig11_native/native", native_time, engine="native",
                 image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 speedup=round(speedup, 2), tile=[TILE_W, TILE_H])

    # Acceptance: whole-nest C must clear 2x over per-tile NumPy dispatch
    # on this workload (measured ~4-8x on dev hosts; 2x leaves room for
    # noisy shared runners without ever letting a regression to parity by).
    assert speedup >= 2.0, f"native only {speedup:.2f}x vs compiled"


@pytest.mark.skipif(not HAVE_NATIVE,
                    reason="no C toolchain / cffi: native degrades, nothing "
                           "to measure")
def test_fig11_native_parallel_scaling(bench_planes_large):
    """GIL-free tile fan-out: parallel native vs serial native.

    Always records both timings; the >= 2x scaling gate only applies with
    >= 4 effective workers (the segment calls release the GIL, so with real
    cores the pool must deliver real speedup, not time-slicing).
    """
    configure_pool()           # fresh pool sized to this machine
    frame = bench_planes_large["r"]
    serial = _two_stage_blur("serial")
    parallel = _two_stage_blur("parallel")

    np.testing.assert_array_equal(
        serial.realize(frame, engine="native"),
        parallel.realize(frame, engine="native"))

    serial_time, parallel_time, speedup = _paired_ratio(
        lambda: serial.realize(frame, engine="native"),
        lambda: parallel.realize(frame, engine="native"))

    cores = os.cpu_count() or 1
    print_table(
        f"Figure 11 (native parallel): {LARGE_WIDTH}x{LARGE_HEIGHT}, "
        f"{pool_size()} workers / {cores} cores",
        ["schedule", "ms", "speedup"],
        [["native serial", f"{serial_time * 1000:.1f}", "1.00x"],
         ["native parallel", f"{parallel_time * 1000:.1f}",
          f"{speedup:.2f}x"]])
    record_bench("fig11_native/native_parallel", parallel_time,
                 engine="native", image_size=(LARGE_WIDTH, LARGE_HEIGHT),
                 speedup=round(speedup, 2), workers=pool_size(), cores=cores)

    if pool_size() >= 4 and parallel_enabled():
        assert speedup >= 2.0, \
            f"GIL-free parallel tiles only {speedup:.2f}x over serial native"


def test_fig11_engines_agree(bench_planes_large):
    """All three engines bit-identical on a cropped frame (degraded or not —
    this leg runs on compilerless hosts too)."""
    frame = bench_planes_large["r"][:160, :240]
    oracle = _two_stage_blur("serial").realize(frame, engine="interp")
    for mode in ("serial", "parallel"):
        for engine in ("compiled", "native"):
            np.testing.assert_array_equal(
                _two_stage_blur(mode).realize(frame, engine=engine), oracle)
