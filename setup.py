"""Setuptools entry point.

The offline environment has no `wheel` package, so editable installs must go
through the legacy ``setup.py develop`` path; keep the metadata here.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Helium: lifting stencil kernels from stripped x86 "
        "binaries to Halide (PLDI 2015)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
